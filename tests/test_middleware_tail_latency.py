"""Tests for the tail-latency stack and its satellite fixes.

Covers the ``request-hedging`` and ``rtt-aware-write-routing`` stages plus
the PR's bug fixes: cold-start-safe latency-aware ranking (an unsampled
replica must never rank as "fastest" or poison the badness cutoff), strict
build-time ``max_level`` validation with counted-and-ignored bad per-request
hints, the completed ``describe()`` surfaces, and RTT-tracker cleanup on
node decommission.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig, ConsistencyLevel, NodeConfig
from repro.cluster.types import OperationType
from repro.middleware import (
    HEDGED_PIPELINE,
    LATENCY_AWARE_PIPELINE,
    LatencyAwareReplicaSelection,
    MiddlewareBuildContext,
    NodeRttTracker,
    PerRequestConsistencyOverride,
    RequestHedging,
    RttAwareWriteRouting,
    build_pipeline,
)
from repro.middleware.base import RequestContext
from repro.simulation import Simulator


def make_cluster(simulator, middleware=None, middleware_params=None, **overrides):
    config = ClusterConfig(
        initial_nodes=overrides.pop("nodes", 3),
        replication_factor=overrides.pop("rf", 3),
        node=NodeConfig(ops_capacity=500.0),
        middleware=middleware,
        middleware_params=middleware_params or {},
        **overrides,
    )
    return Cluster(simulator, config)


def make_read_ctx(**overrides) -> RequestContext:
    defaults = dict(
        key="k",
        operation=OperationType.READ,
        is_read=True,
        coordinator_id="node-1",
        replication_factor=3,
        requested_level=ConsistencyLevel.ONE,
        consistency_level=ConsistencyLevel.ONE,
    )
    defaults.update(overrides)
    return RequestContext(**defaults)


# ----------------------------------------------------------------------
# Cold-start ranking fix (latency-aware selection)
# ----------------------------------------------------------------------
def test_unsampled_nodes_are_not_ranked_fastest_on_cold_start():
    # No fallback: unsampled nodes are genuinely unknown.  The old code
    # treated them as 0.0 RTT — ranked fastest AND collapsing the badness
    # cutoff to 0, which marked every sampled replica "slow".
    tracker = NodeRttTracker(alpha=1.0)
    selection = LatencyAwareReplicaSelection(tracker, badness_threshold=0.5)
    tracker.observe("a", 0.010)

    picks = [tuple(selection.select_read_targets(None, ["a", "b", "c"], 1)) for _ in range(6)]
    # The single sampled node must not be avoided on the strength of
    # zero-information neighbours...
    assert selection.avoidances == 0
    # ...and the unknown nodes stay in rotation so they get probed.
    seen = {node for pick in picks for node in pick}
    assert seen == {"a", "b", "c"}


def test_no_samples_at_all_falls_back_to_plain_rotation():
    tracker = NodeRttTracker()
    selection = LatencyAwareReplicaSelection(tracker)
    picks = [tuple(selection.select_read_targets(None, ["c", "a", "b"], 2)) for _ in range(3)]
    assert picks == [("a", "b"), ("b", "c"), ("c", "a")]
    assert selection.avoidances == 0


def test_exploration_with_unknown_nodes_never_duplicates_targets():
    tracker = NodeRttTracker(alpha=1.0)
    selection = LatencyAwareReplicaSelection(
        tracker, badness_threshold=0.5, explore_every=2
    )
    tracker.observe("a", 0.010)
    tracker.observe("b", 0.200)  # slow: avoided, then explored
    for _ in range(4):
        targets = selection.select_read_targets(None, ["a", "b", "c"], 2)
        assert len(targets) == len(set(targets))
    assert selection.explorations >= 1


# ----------------------------------------------------------------------
# Consistency-override fixes
# ----------------------------------------------------------------------
def test_invalid_max_level_fails_at_build_time_with_valid_levels_listed():
    simulator = Simulator(seed=1)
    with pytest.raises(ValueError, match="bad max_level.*BOGUS"):
        build_pipeline(
            ["consistency-override"],
            MiddlewareBuildContext(simulator=simulator),
            params={"consistency-override": {"max_level": "BOGUS"}},
        )


def test_invalid_per_request_hint_is_counted_and_ignored():
    override = PerRequestConsistencyOverride()
    ctx = make_read_ctx(hints={"consistency_level": "NOT-A-LEVEL"})
    override.on_request(ctx)  # must not raise
    assert ctx.consistency_level is ConsistencyLevel.ONE
    assert override.overrides_invalid == 1
    assert override.overrides_applied == 0


def test_describe_reports_applied_clamped_and_invalid():
    override = PerRequestConsistencyOverride(max_level=ConsistencyLevel.ONE)
    override.on_request(make_read_ctx(hints={"consistency_level": "QUORUM"}))
    override.on_request(make_read_ctx(hints={"consistency_level": "junk"}))
    described = override.describe()
    assert described["overrides_clamped"] == 1
    assert described["overrides_invalid"] == 1
    assert described["overrides_applied"] == 0  # clamped back to the default ONE


# ----------------------------------------------------------------------
# RTT-aware write routing
# ----------------------------------------------------------------------
def test_write_targets_ordered_by_estimate_with_unknown_last():
    tracker = NodeRttTracker(alpha=1.0)
    tracker.observe("slow", 0.100)
    tracker.observe("fast", 0.002)
    routing = RttAwareWriteRouting(tracker)
    ordered = routing.order_write_targets(None, ["slow", "unknown", "fast"])
    assert ordered == ["fast", "slow", "unknown"]
    assert routing.writes_ordered == 1


def test_preferred_coordinator_skips_slow_nodes_and_rotates():
    tracker = NodeRttTracker(alpha=1.0)
    tracker.observe("a", 0.002)
    tracker.observe("b", 0.003)
    tracker.observe("c", 0.100)  # meaningfully slower than the best
    routing = RttAwareWriteRouting(tracker, badness_threshold=0.5)
    picks = [routing.preferred_coordinator(["a", "b", "c"]) for _ in range(4)]
    assert picks == ["a", "b", "a", "b"]


def test_preferred_coordinator_defers_when_nothing_to_avoid():
    tracker = NodeRttTracker(alpha=1.0)
    routing = RttAwareWriteRouting(tracker)
    # No signal at all -> leave the cluster's round-robin alone.
    assert routing.preferred_coordinator(["a", "b"]) is None
    tracker.observe("a", 0.002)
    tracker.observe("b", 0.002)
    # Everyone healthy -> likewise.
    assert routing.preferred_coordinator(["a", "b"]) is None
    assert routing.coordinators_preferred == 0


# ----------------------------------------------------------------------
# Hedging: budget and bookkeeping
# ----------------------------------------------------------------------
def test_hedge_budget_source_is_clamped_between_min_and_static():
    tracker = NodeRttTracker()
    hedging = RequestHedging(tracker, operation_timeout=1.0, budget_fraction=0.05)
    assert hedging.current_budget() == pytest.approx(0.05)

    source_value = [0.0]
    hedging.attach_budget_source(lambda: source_value[0])
    assert hedging.current_budget() == pytest.approx(0.05)  # no signal yet
    source_value[0] = 0.012
    assert hedging.current_budget() == pytest.approx(0.012)
    source_value[0] = 1e-9
    assert hedging.current_budget() == pytest.approx(0.001)  # min_budget floor
    source_value[0] = 10.0
    assert hedging.current_budget() == pytest.approx(0.05)  # static ceiling


def test_hedge_candidates_are_spares_ranked_fast_first_unknown_last():
    tracker = NodeRttTracker(alpha=1.0)
    tracker.observe("b", 0.050)
    tracker.observe("c", 0.002)
    hedging = RequestHedging(tracker, operation_timeout=1.0)
    plan = hedging.hedge_read(None, ["a", "b", "c", "d"], ["d"])
    assert plan is not None
    budget, candidates = plan
    assert budget == pytest.approx(0.05)
    assert candidates == ["c", "b", "a"]
    assert hedging.hedges_armed == 1
    # No spare replicas -> no opinion, nothing armed.
    assert hedging.hedge_read(None, ["a"], ["a"]) is None
    assert hedging.hedges_armed == 1


def test_hedged_reads_fire_and_complete_exactly_once():
    simulator = Simulator(seed=5)
    cluster = make_cluster(
        simulator,
        middleware=HEDGED_PIPELINE,
        # A budget far below any network RTT: every read hedges.
        middleware_params={"request-hedging": {"budget": 1e-6}},
    )
    results = []
    for index in range(20):
        cluster.write(f"key-{index}", b"v")
    simulator.run_until(simulator.now + 5.0)
    for index in range(20):
        cluster.read(f"key-{index}", on_complete=results.append)
    simulator.run_until(simulator.now + 10.0)

    # Every read completed exactly once despite two in-flight replica reads.
    assert len(results) == 20
    assert all(result.success for result in results)
    hedging = cluster.pipeline.get("request-hedging")
    assert cluster.coordinator.hedged_reads == hedging.hedges_fired
    assert hedging.hedges_fired > 0
    assert hedging.hedges_armed == hedging.hedges_fired + hedging.hedges_cancelled
    # A fired hedge contacts one extra replica, and the dedup bookkeeping
    # never lets one node satisfy the quorum twice.
    for result in results:
        assert result.replicas_responded <= result.replicas_contacted
        assert result.replicas_contacted <= 2


def test_hedge_timer_is_cancelled_when_read_completes_in_budget():
    simulator = Simulator(seed=6)
    cluster = make_cluster(
        simulator,
        middleware=HEDGED_PIPELINE,
        # A budget close to the timeout: no healthy read ever reaches it.
        middleware_params={"request-hedging": {"budget": 0.9}},
    )
    results = []
    cluster.write("key", b"v")
    simulator.run_until(simulator.now + 5.0)
    for _ in range(10):
        cluster.read("key", on_complete=results.append)
    simulator.run_until(simulator.now + 10.0)

    assert len(results) == 10
    hedging = cluster.pipeline.get("request-hedging")
    assert hedging.hedges_armed == hedging.hedges_cancelled > 0
    assert hedging.hedges_fired == 0
    assert cluster.coordinator.hedged_reads == 0
    assert all(result.replicas_contacted == 1 for result in results)


# ----------------------------------------------------------------------
# Decommission cleanup
# ----------------------------------------------------------------------
def test_decommission_forgets_rtt_state_for_the_removed_node():
    simulator = Simulator(seed=7)
    cluster = make_cluster(simulator, middleware=LATENCY_AWARE_PIPELINE, nodes=4, rf=3)
    for index in range(30):
        cluster.write(f"key-{index}", b"v")
    simulator.run_until(simulator.now + 5.0)
    for index in range(30):
        cluster.read(f"key-{index}")
    simulator.run_until(simulator.now + 10.0)

    tracker = cluster.pipeline.get("latency-aware-selection").tracker
    removed, _ = cluster.remove_node()
    assert removed in tracker.snapshot()  # still tracked while draining
    simulator.run_until(simulator.now + 120.0)
    assert removed not in tracker.snapshot()
    assert tracker.samples(removed) == 0


def test_hedged_pipeline_shares_one_tracker_across_stages():
    simulator = Simulator(seed=8)
    cluster = make_cluster(simulator, middleware=HEDGED_PIPELINE)
    selection = cluster.pipeline.get("latency-aware-selection")
    hedging = cluster.pipeline.get("request-hedging")
    routing = cluster.pipeline.get("rtt-aware-write-routing")
    assert selection.tracker is hedging.tracker is routing.tracker


# ----------------------------------------------------------------------
# Per-key hedging budget (hot keys hedge at a tighter fraction)
# ----------------------------------------------------------------------
def _bare_hedging(**overrides):
    defaults = dict(operation_timeout=1.0, budget_fraction=0.05)
    defaults.update(overrides)
    return RequestHedging(NodeRttTracker(), **defaults)


def test_hot_key_hedges_at_tighter_budget_cold_keys_do_not():
    hedging = _bare_hedging(hot_key_fraction=0.5, hot_key_threshold=4)
    live, targets = ["n1", "n2"], ["n1"]
    base = hedging.static_budget
    hot = make_read_ctx(key="hot")
    budgets = [hedging.hedge_read(hot, live, targets)[0] for _ in range(6)]
    # Below the threshold the full budget applies; at and past it, half.
    assert budgets[:3] == [base] * 3
    assert budgets[3:] == [base * 0.5] * 3
    assert hedging.hot_key_hedges == 3
    # A cold key is unaffected by the hot one.
    cold = make_read_ctx(key="cold")
    assert hedging.hedge_read(cold, live, targets)[0] == base


def test_hot_key_budget_never_goes_below_min_budget():
    hedging = _bare_hedging(
        budget=0.002, min_budget=0.0015, hot_key_fraction=0.25, hot_key_threshold=1
    )
    ctx = make_read_ctx(key="hot")
    budget, _ = hedging.hedge_read(ctx, ["n1", "n2"], ["n1"])
    assert budget == 0.0015  # 0.002 * 0.25 clamped up to min_budget


def test_hot_key_counts_decay_by_halving():
    hedging = _bare_hedging(
        hot_key_fraction=0.5, hot_key_threshold=100, hot_key_decay_every=4
    )
    ctx = make_read_ctx(key="k")
    for _ in range(4):
        hedging.hedge_read(ctx, ["n1", "n2"], ["n1"])
    # 4 arms then decay: count 4 -> 2; a 5th arm makes it 3.
    hedging.hedge_read(ctx, ["n1", "n2"], ["n1"])
    assert hedging._key_counts["k"] == 3
    assert hedging.describe()["hot_keys_tracked"] == 1


def test_hot_key_tracking_disabled_at_fraction_one():
    hedging = _bare_hedging(hot_key_fraction=1.0, hot_key_threshold=1)
    ctx = make_read_ctx(key="k")
    for _ in range(5):
        hedging.hedge_read(ctx, ["n1", "n2"], ["n1"])
    assert hedging.hot_key_hedges == 0
    assert hedging._key_counts == {}


def test_hedge_read_tolerates_missing_context():
    # Unit-level callers (and some tools) pass ctx=None; no key tracking.
    hedging = _bare_hedging(hot_key_threshold=1)
    budget, spares = hedging.hedge_read(None, ["n1", "n2"], ["n1"])
    assert budget == hedging.static_budget
    assert spares == ["n2"]


# ----------------------------------------------------------------------
# Amortised (cached) dynamic budget
# ----------------------------------------------------------------------
def test_budget_source_is_polled_once_per_refresh_interval():
    clock = {"now": 0.0}
    calls = {"n": 0}

    def source():
        calls["n"] += 1
        return 0.012

    hedging = _bare_hedging(
        clock=lambda: clock["now"], budget_refresh_interval=0.5
    )
    hedging.attach_budget_source(source)
    for _ in range(10):
        assert hedging.current_budget() == 0.012
    assert calls["n"] == 1  # cached within the interval
    clock["now"] = 0.5
    assert hedging.current_budget() == 0.012
    assert calls["n"] == 2  # refreshed exactly once at expiry


def test_budget_cache_absent_without_clock():
    calls = {"n": 0}

    def source():
        calls["n"] += 1
        return 0.012

    hedging = _bare_hedging()
    hedging.attach_budget_source(source)
    hedging.current_budget()
    hedging.current_budget()
    assert calls["n"] == 2  # original recompute-every-call semantics


def test_hedging_declares_wheel_granularity_and_pipeline_surfaces_it():
    from repro.middleware.base import MiddlewarePipeline

    hedging = _bare_hedging(timer_granularity=0.025)
    pipeline = MiddlewarePipeline([hedging])
    assert pipeline.timer_granularity == 0.025
    # Opting out keeps the pipeline on the direct heap path.
    plain = MiddlewarePipeline([_bare_hedging(timer_granularity=None)])
    assert plain.timer_granularity is None


def test_hedged_cluster_routes_timers_through_the_wheel():
    simulator = Simulator(seed=11)
    cluster = make_cluster(simulator, middleware=HEDGED_PIPELINE)
    coordinator = cluster.coordinator
    assert coordinator.timers is not None
    assert coordinator.timers.granularity == 0.025
    cluster.preload({"k": b"v"}, {"k": 1})
    done = []
    cluster.read("k", on_complete=done.append)
    simulator.run_until(5.0)
    assert done and done[0].success
    stats = coordinator.timer_stats()
    assert stats["timers_armed"] > 0


def test_default_cluster_never_constructs_a_timer_wheel():
    simulator = Simulator(seed=11)
    cluster = make_cluster(simulator)
    assert cluster.coordinator.timers is None
    assert cluster.coordinator.timer_stats() == {}

"""Unit tests for the deterministic random-stream registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.randomness import RandomStreams, exponential, lognormal_from_mean_cv


def test_same_seed_same_stream_same_sequence():
    a = RandomStreams(seed=7).stream("workload").random(10)
    b = RandomStreams(seed=7).stream("workload").random(10)
    assert np.allclose(a, b)


def test_different_names_give_independent_streams():
    streams = RandomStreams(seed=7)
    a = streams.stream("a").random(10)
    b = streams.stream("b").random(10)
    assert not np.allclose(a, b)


def test_stream_identity_is_cached():
    streams = RandomStreams(seed=1)
    assert streams.stream("x") is streams.stream("x")


def test_creation_order_does_not_change_streams():
    first = RandomStreams(seed=3)
    first.stream("alpha")
    alpha_then_beta = first.stream("beta").random(5)

    second = RandomStreams(seed=3)
    beta_only = second.stream("beta").random(5)
    assert np.allclose(alpha_then_beta, beta_only)


def test_spawn_family_members_are_distinct_and_stable():
    streams = RandomStreams(seed=9)
    node0 = streams.spawn("node", 0).random(5)
    node1 = streams.spawn("node", 1).random(5)
    assert not np.allclose(node0, node1)
    again = RandomStreams(seed=9).spawn("node", 0).random(5)
    assert np.allclose(node0, again)


def test_streams_bulk_creation_and_known_streams():
    streams = RandomStreams(seed=2)
    created = streams.streams(["x", "y"])
    assert set(created) == {"x", "y"}
    assert set(streams.known_streams()) == {"x", "y"}


def test_reset_recreates_generators_from_scratch():
    streams = RandomStreams(seed=5)
    before = streams.stream("w").random(3)
    streams.reset()
    after = streams.stream("w").random(3)
    assert np.allclose(before, after)


def test_exponential_zero_mean_is_zero():
    rng = np.random.default_rng(0)
    assert exponential(rng, 0.0) == 0.0
    assert exponential(rng, -1.0) == 0.0


def test_exponential_positive_mean_matches_expectation():
    rng = np.random.default_rng(0)
    samples = [exponential(rng, 2.0) for _ in range(5000)]
    assert abs(np.mean(samples) - 2.0) < 0.15


def test_lognormal_mean_and_degenerate_cases():
    rng = np.random.default_rng(0)
    samples = [lognormal_from_mean_cv(rng, 10.0, 0.5) for _ in range(8000)]
    assert abs(np.mean(samples) - 10.0) < 0.5
    assert lognormal_from_mean_cv(rng, 10.0, 0.0) == 10.0
    assert lognormal_from_mean_cv(rng, 0.0, 0.5) == 0.0

"""Unit tests for the queueing-server resource model."""

from __future__ import annotations

import pytest

from repro.simulation import QueueingServer, ResourceError, Simulator


def make_server(simulator, rate=1.0, cv=0.0):
    return QueueingServer(simulator, name="test", service_rate=rate, service_cv=cv)


def test_single_request_completes_after_service_time():
    simulator = Simulator(seed=0)
    server = make_server(simulator)
    completions = []
    server.submit(2.0, completions.append)
    simulator.run_until(10.0)
    assert completions == [2.0]
    assert server.completed == 1


def test_requests_are_served_fifo():
    simulator = Simulator(seed=0)
    server = make_server(simulator)
    completions = []
    server.submit(1.0, lambda t: completions.append(("a", t)))
    server.submit(1.0, lambda t: completions.append(("b", t)))
    simulator.run_until(10.0)
    assert completions == [("a", 1.0), ("b", 2.0)]


def test_speed_factor_slows_down_service():
    simulator = Simulator(seed=0)
    server = make_server(simulator)
    server.set_speed_factor(0.5)
    completions = []
    server.submit(1.0, completions.append)
    simulator.run_until(10.0)
    assert completions == [2.0]


def test_service_rate_change_speeds_up_service():
    simulator = Simulator(seed=0)
    server = make_server(simulator, rate=2.0)
    completions = []
    server.submit(1.0, completions.append)
    simulator.run_until(10.0)
    assert completions == [0.5]


def test_queue_length_and_busy_flags():
    simulator = Simulator(seed=0)
    server = make_server(simulator)
    server.submit(5.0, lambda t: None)
    server.submit(5.0, lambda t: None)
    assert server.busy
    assert server.queue_length == 1
    simulator.run_until(20.0)
    assert not server.busy
    assert server.queue_length == 0


def test_invalid_parameters_raise():
    simulator = Simulator(seed=0)
    with pytest.raises(ResourceError):
        QueueingServer(simulator, "bad", service_rate=0.0)
    server = make_server(simulator)
    with pytest.raises(ResourceError):
        server.submit(-1.0, lambda t: None)
    with pytest.raises(ResourceError):
        server.set_speed_factor(0.0)
    with pytest.raises(ResourceError):
        server.set_service_rate(-2.0)


def test_utilization_tracks_busy_fraction():
    simulator = Simulator(seed=0)
    server = make_server(simulator)
    server.submit(5.0, lambda t: None)
    simulator.run_until(10.0)
    utilization = server.utilization.sample(simulator.now)
    assert utilization == pytest.approx(0.5, abs=0.01)


def test_utilization_window_resets_between_samples():
    simulator = Simulator(seed=0)
    server = make_server(simulator)
    server.submit(2.0, lambda t: None)
    simulator.run_until(2.0)
    first = server.utilization.sample(simulator.now)
    simulator.run_until(4.0)
    second = server.utilization.sample(simulator.now)
    assert first == pytest.approx(1.0, abs=0.01)
    assert second == pytest.approx(0.0, abs=0.01)


def test_estimated_wait_grows_with_backlog():
    simulator = Simulator(seed=0)
    server = make_server(simulator)
    assert server.estimated_wait() == 0.0
    server.submit(1.0, lambda t: None)
    server.submit(1.0, lambda t: None)
    server.submit(1.0, lambda t: None)
    assert server.estimated_wait() > 1.0


def test_mean_queue_delay_accounts_waiting_time():
    simulator = Simulator(seed=0)
    server = make_server(simulator)
    server.submit(2.0, lambda t: None)
    server.submit(2.0, lambda t: None)
    simulator.run_until(10.0)
    # First waits 0, second waits 2 seconds -> mean 1.
    assert server.mean_queue_delay == pytest.approx(1.0, abs=0.01)


def test_service_noise_respects_mean():
    simulator = Simulator(seed=0)
    server = QueueingServer(simulator, "noisy", service_rate=1.0, service_cv=0.5)
    completions = []
    for _ in range(200):
        server.submit(0.01, completions.append)
    simulator.run_until(1000.0)
    assert len(completions) == 200
    assert server.total_busy_time == pytest.approx(2.0, rel=0.3)

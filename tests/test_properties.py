"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ConsistencyLevel, HashRing, StorageEngine, VersionStamp, VersionedValue
from repro.cluster.versioning import compare_versions
from repro.consistency import StalenessModel
from repro.core.forecasting import EwmaForecaster, HoltWintersForecaster
from repro.monitoring import P2QuantileEstimator, WindowedPercentiles
from repro.simulation import TimeSeries
from repro.workload import ZipfianKeys, make_distribution

settings.register_profile(
    "repro", deadline=None, max_examples=60, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# Hash ring invariants
# ----------------------------------------------------------------------
node_names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=6), min_size=1, max_size=8, unique=True
)


@given(nodes=node_names, key=st.text(min_size=1, max_size=20), rf=st.integers(1, 5))
def test_ring_preference_list_invariants(nodes, key, rf):
    ring = HashRing(virtual_nodes=16)
    for node in nodes:
        ring.add_node(node)
    prefs = ring.preference_list(key, rf)
    # Size is min(rf, n), entries unique and drawn from the members.
    assert len(prefs) == min(rf, len(nodes))
    assert len(set(prefs)) == len(prefs)
    assert set(prefs) <= set(nodes)
    # Determinism.
    assert prefs == ring.preference_list(key, rf)


@given(nodes=node_names, key=st.text(min_size=1, max_size=20))
def test_ring_smaller_rf_is_prefix_of_larger(nodes, key):
    ring = HashRing(virtual_nodes=16)
    for node in nodes:
        ring.add_node(node)
    smaller = ring.preference_list(key, 2)
    larger = ring.preference_list(key, 4)
    assert larger[: len(smaller)] == smaller


# ----------------------------------------------------------------------
# Versioning / storage invariants
# ----------------------------------------------------------------------
version_strategy = st.builds(
    VersionedValue,
    stamp=st.builds(
        VersionStamp,
        timestamp=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        sequence=st.integers(0, 10_000),
    ),
    value=st.just(b"v"),
    write_id=st.integers(0, 1000),
    size=st.integers(1, 4096),
)


@given(versions=st.lists(version_strategy, min_size=1, max_size=20))
def test_storage_lww_keeps_global_maximum(versions):
    engine = StorageEngine("n")
    for version in versions:
        engine.apply("k", version)
    newest = max(versions, key=lambda v: v.stamp)
    assert engine.peek("k").stamp == newest.stamp


@given(a=version_strategy, b=version_strategy)
def test_compare_versions_is_antisymmetric(a, b):
    assert compare_versions(a, b) == -compare_versions(b, a)


# ----------------------------------------------------------------------
# Consistency-level arithmetic
# ----------------------------------------------------------------------
@given(rf=st.integers(1, 9))
def test_consistency_level_ack_bounds(rf):
    for level in ConsistencyLevel:
        acks = level.required_acks(rf)
        assert 1 <= acks <= rf
    assert ConsistencyLevel.QUORUM.required_acks(rf) == rf // 2 + 1
    assert ConsistencyLevel.ALL.required_acks(rf) == rf


@given(rf=st.integers(1, 7))
def test_quorum_reads_and_writes_always_intersect(rf):
    assert ConsistencyLevel.is_strongly_consistent(
        ConsistencyLevel.QUORUM, ConsistencyLevel.QUORUM, rf
    )


# ----------------------------------------------------------------------
# PBS model invariants
# ----------------------------------------------------------------------
@given(
    lag=st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
    rf=st.integers(1, 7),
    t=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
)
def test_pbs_probability_is_valid_and_monotone_in_acks(lag, rf, t):
    model = StalenessModel(mean_replication_lag=lag)
    previous = 1.1
    for read_acks in range(1, rf + 1):
        p = model.stale_probability(t, rf, read_acks=read_acks, write_acks=1)
        assert 0.0 <= p <= 1.0
        assert p <= previous + 1e-9
        previous = p


@given(lag=st.floats(min_value=0.001, max_value=5.0), rf=st.integers(2, 6))
def test_pbs_probability_decreases_over_time(lag, rf):
    model = StalenessModel(mean_replication_lag=lag)
    samples = [model.stale_probability(t, rf, 1, 1) for t in (0.0, lag, 3 * lag, 10 * lag)]
    for earlier, later in zip(samples, samples[1:]):
        assert later <= earlier + 1e-9


# ----------------------------------------------------------------------
# Streaming percentiles
# ----------------------------------------------------------------------
@given(values=st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=400))
def test_windowed_percentiles_bounded_by_min_max(values):
    window = WindowedPercentiles(window=500)
    window.observe_many(values)
    for q in (0, 50, 95, 100):
        assert min(values) - 1e-9 <= window.percentile(q) <= max(values) + 1e-9


@given(values=st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=30, max_size=400))
def test_p2_estimator_stays_within_range(values):
    estimator = P2QuantileEstimator(0.9)
    for value in values:
        estimator.observe(value)
    assert min(values) - 1e-9 <= estimator.value() <= max(values) + 1e-9


# ----------------------------------------------------------------------
# Time series invariants
# ----------------------------------------------------------------------
@given(
    samples=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        ),
        min_size=2,
        max_size=100,
    )
)
def test_timeseries_integral_matches_numpy(samples):
    ordered = sorted(samples, key=lambda pair: pair[0])
    series = TimeSeries("x")
    last_time = None
    for time, value in ordered:
        if last_time is not None and time <= last_time:
            time = last_time + 1e-6
        series.record(time, value)
        last_time = time
    times = np.asarray(series.times)
    values = np.asarray(series.values)
    expected = float(np.sum(values[:-1] * np.diff(times)))
    assert series.integrate() == pytest.approx(expected, rel=1e-9, abs=1e-6)


# ----------------------------------------------------------------------
# Workload distributions
# ----------------------------------------------------------------------
@given(
    record_count=st.integers(2, 5000),
    name=st.sampled_from(["uniform", "zipfian", "latest", "hotspot"]),
    seed=st.integers(0, 2**32 - 1),
)
def test_distributions_stay_in_range(record_count, name, seed):
    distribution = make_distribution(name, record_count)
    rng = np.random.default_rng(seed)
    for _ in range(50):
        index = distribution.next_index(rng)
        assert 0 <= index < record_count


@given(theta=st.floats(min_value=0.1, max_value=0.99), seed=st.integers(0, 1000))
def test_zipfian_any_theta_valid(theta, seed):
    distribution = ZipfianKeys(100, theta=theta)
    rng = np.random.default_rng(seed)
    draws = [distribution.next_index(rng) for _ in range(100)]
    assert all(0 <= d < 100 for d in draws)


# ----------------------------------------------------------------------
# Forecasters
# ----------------------------------------------------------------------
@given(values=st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=100))
def test_ewma_forecast_bounded_by_observed_range(values):
    forecaster = EwmaForecaster(alpha=0.4)
    for i, value in enumerate(values):
        forecaster.observe(float(i), value)
    forecast = forecaster.forecast(10.0)
    assert min(values) - 1e-6 <= forecast <= max(values) + 1e-6


@given(
    values=st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=2, max_size=100),
    horizon=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
)
def test_holt_winters_forecast_is_finite_and_non_negative(values, horizon):
    forecaster = HoltWintersForecaster()
    for i, value in enumerate(values):
        forecaster.observe(float(i * 10), value)
    forecast = forecaster.forecast(horizon)
    assert np.isfinite(forecast)
    assert forecast >= 0.0

"""Integration-style tests for the request coordinator through the cluster API."""

from __future__ import annotations

import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    ConsistencyLevel,
    NodeConfig,
    OperationType,
    ReadResult,
    WriteResult,
)
from repro.simulation import Simulator


def make_cluster(simulator, nodes=3, rf=3, read_cl=ConsistencyLevel.ONE, write_cl=ConsistencyLevel.ONE, **node_overrides):
    node_defaults = dict(ops_capacity=500.0)
    node_defaults.update(node_overrides)
    config = ClusterConfig(
        initial_nodes=nodes,
        replication_factor=rf,
        read_consistency=read_cl,
        write_consistency=write_cl,
        node=NodeConfig(**node_defaults),
    )
    return Cluster(simulator, config)


def write_sync(simulator, cluster, key, value=b"v", until=None, **kwargs):
    results = []
    cluster.write(key, value, on_complete=results.append, **kwargs)
    simulator.run_until(until if until is not None else simulator.now + 2.0)
    return results[0]


def read_sync(simulator, cluster, key, **kwargs):
    results = []
    cluster.read(key, on_complete=results.append, **kwargs)
    simulator.run_until(simulator.now + 2.0)
    return results[0]


def test_write_then_read_returns_value():
    simulator = Simulator(seed=1)
    cluster = make_cluster(simulator)
    write_result = write_sync(simulator, cluster, "user1", b"hello")
    assert write_result.success
    assert write_result.version_timestamp is not None
    read_result = read_sync(simulator, cluster, "user1")
    assert read_result.success
    assert read_result.value == b"hello"
    assert read_result.version_timestamp == pytest.approx(write_result.version_timestamp)


def test_read_of_missing_key_succeeds_with_no_value():
    simulator = Simulator(seed=1)
    cluster = make_cluster(simulator)
    result = read_sync(simulator, cluster, "never-written")
    assert result.success
    assert result.value is None


def test_write_latency_grows_with_stricter_consistency():
    simulator = Simulator(seed=2)
    cluster = make_cluster(simulator)
    one = write_sync(simulator, cluster, "k1", consistency_level=ConsistencyLevel.ONE)
    all_levels = [
        write_sync(simulator, cluster, f"k-all-{i}", consistency_level=ConsistencyLevel.ALL)
        for i in range(20)
    ]
    ones = [
        write_sync(simulator, cluster, f"k-one-{i}", consistency_level=ConsistencyLevel.ONE)
        for i in range(20)
    ]
    mean_all = sum(r.latency for r in all_levels) / len(all_levels)
    mean_one = sum(r.latency for r in ones) / len(ones)
    assert one.success
    assert mean_all > mean_one


def test_newest_version_wins_on_read():
    simulator = Simulator(seed=3)
    cluster = make_cluster(simulator)
    write_sync(simulator, cluster, "k", b"old")
    write_sync(simulator, cluster, "k", b"new")
    result = read_sync(simulator, cluster, "k", consistency_level=ConsistencyLevel.ALL)
    assert result.value == b"new"


def test_all_replicas_eventually_receive_the_write():
    simulator = Simulator(seed=4)
    cluster = make_cluster(simulator)
    write_sync(simulator, cluster, "k", b"payload")
    simulator.run_until(simulator.now + 5.0)
    versions = cluster.replica_versions("k")
    assert len(versions) == 3
    assert all(v is not None and v.value == b"payload" for v in versions.values())


def test_unavailable_when_too_few_live_replicas():
    simulator = Simulator(seed=5)
    cluster = make_cluster(simulator, nodes=3, rf=3)
    write_sync(simulator, cluster, "k", b"v")
    # Crash two replicas; CL=ALL can no longer be met.
    node_ids = list(cluster.node_ids())
    cluster.crash_node(node_ids[0])
    cluster.crash_node(node_ids[1])
    simulator.run_until(simulator.now + 30.0)  # let failure detection settle
    result = write_sync(simulator, cluster, "k", b"v2", consistency_level=ConsistencyLevel.ALL)
    assert not result.success
    assert "unavailable" in (result.error or "")
    assert cluster.coordinator.unavailable_errors >= 1


def test_write_at_one_still_succeeds_with_replicas_down():
    simulator = Simulator(seed=6)
    cluster = make_cluster(simulator, nodes=3, rf=3)
    node_ids = list(cluster.node_ids())
    cluster.crash_node(node_ids[0])
    simulator.run_until(simulator.now + 30.0)
    result = write_sync(simulator, cluster, "k", b"v", consistency_level=ConsistencyLevel.ONE)
    assert result.success
    # The down replica should have received a hint.
    assert cluster.hinted_handoff.pending + cluster.hinted_handoff.hints_replayed >= 1


def test_no_serving_nodes_fails_immediately():
    simulator = Simulator(seed=7)
    cluster = make_cluster(simulator, nodes=2, rf=2)
    for node_id in list(cluster.node_ids()):
        cluster.crash_node(node_id)
    results = []
    cluster.write("k", b"v", on_complete=results.append)
    cluster.read("k", on_complete=results.append)
    assert len(results) == 2
    assert not results[0].success
    assert not results[1].success


def test_operation_results_carry_metadata():
    simulator = Simulator(seed=8)
    cluster = make_cluster(simulator)
    result = write_sync(simulator, cluster, "k", b"v", consistency_level=ConsistencyLevel.QUORUM)
    assert result.consistency_level is ConsistencyLevel.QUORUM
    assert result.coordinator in cluster.node_ids()
    assert result.replicas_contacted == 3
    assert result.replicas_responded >= 2
    assert result.operation is OperationType.WRITE


def test_listener_receives_completed_operations(small_cluster, simulator):
    completed = []

    class Listener:
        def on_write_acked(self, *args):
            pass

        def on_replica_applied(self, *args):
            pass

        def on_operation_completed(self, result):
            completed.append(result)

        def on_topology_changed(self, change):
            pass

        def on_reconfiguration(self, change):
            pass

    small_cluster.add_listener(Listener())
    small_cluster.write("k", b"v")
    small_cluster.read("k")
    simulator.run_until(2.0)
    kinds = {type(result) for result in completed}
    assert WriteResult in kinds
    assert ReadResult in kinds


def test_probe_operations_are_flagged():
    simulator = Simulator(seed=9)
    cluster = make_cluster(simulator)
    results = []
    cluster.write("probe", b"p", on_complete=results.append, operation=OperationType.PROBE_WRITE)
    simulator.run_until(2.0)
    assert results[0].operation.is_probe

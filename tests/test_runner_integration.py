"""End-to-end integration tests of the Simulation façade and experiment plumbing."""

from __future__ import annotations

import pytest

from repro import (
    ClusterConfig,
    ConstantLoad,
    NodeConfig,
    Simulation,
    SimulationConfig,
    StepLoad,
    WorkloadSpec,
)
from repro.core.controller import ControllerConfig
from repro.experiments.tables import ExperimentResult, ResultTable
from repro.workload import BALANCED


def small_config(seed=1, duration=180.0, rate=60.0, policy="static", nodes=3, capacity=150.0):
    config = SimulationConfig(
        seed=seed,
        duration=duration,
        cluster=ClusterConfig(
            initial_nodes=nodes,
            replication_factor=3,
            node=NodeConfig(ops_capacity=capacity),
        ),
        workload=WorkloadSpec(
            record_count=500, operation_mix=BALANCED, load_shape=ConstantLoad(rate)
        ),
        label=f"test-{policy}",
    )
    config.controller = ControllerConfig(policy=policy, evaluation_interval=20.0)
    return config


def test_simulation_end_to_end_produces_consistent_report():
    simulation = Simulation(small_config())
    report = simulation.run()
    assert report.duration == pytest.approx(180.0)
    assert report.events_processed > 1000
    workload = report.workload_summary
    assert workload["operations_issued"] > 0
    assert workload["operations_completed"] <= workload["operations_issued"]
    assert report.ground_truth_window["windows_opened"] > 0
    assert report.cost.node_hours == pytest.approx(3 * 180.0 / 3600.0, rel=0.05)
    assert report.final_configuration["node_count"] == 3
    headline = report.headline()
    assert headline["total_cost"] > 0
    nested = report.as_dict()
    assert nested["label"] == "test-static"
    assert "sla" in nested


def test_simulation_is_deterministic_for_a_seed():
    report_a = Simulation(small_config(seed=7, duration=120.0)).run()
    report_b = Simulation(small_config(seed=7, duration=120.0)).run()
    assert report_a.workload_summary == report_b.workload_summary
    assert report_a.ground_truth_window == report_b.ground_truth_window
    report_c = Simulation(small_config(seed=8, duration=120.0)).run()
    assert report_c.workload_summary != report_a.workload_summary


def test_simulation_run_can_only_be_called_once():
    simulation = Simulation(small_config(duration=60.0))
    simulation.run()
    with pytest.raises(RuntimeError):
        simulation.run()


@pytest.mark.slow
def test_controller_policy_changes_cluster_size_under_step_load():
    config = small_config(seed=3, duration=500.0, policy="reactive_threshold", capacity=120.0)
    config.workload.load_shape = StepLoad(before_rate=40.0, after_rate=200.0, step_time=120.0)
    simulation = Simulation(config)
    report = simulation.run()
    assert report.final_configuration["node_count"] > 3
    assert report.controller_summary["scale_out_actions"] >= 1
    # Billing must reflect the extra nodes.
    assert report.cost.node_hours > 3 * 500.0 / 3600.0


@pytest.mark.slow
def test_sla_driven_beats_static_on_violations_under_stress():
    static = Simulation(small_config(seed=5, duration=420.0, rate=170.0, policy="static")).run()
    adaptive = Simulation(
        small_config(seed=5, duration=420.0, rate=170.0, policy="sla_driven")
    ).run()
    assert adaptive.controller_summary["actions_executed"] >= 1
    assert (
        adaptive.sla_summary["violation_seconds"] <= static.sla_summary["violation_seconds"]
    )


def test_monitoring_can_be_disabled():
    config = small_config(duration=60.0)
    config.monitoring.enable_probe = False
    config.monitoring.enable_piggyback = False
    config.monitoring.enable_rtt = False
    simulation = Simulation(config)
    report = simulation.run()
    assert report.estimator_estimates == {}
    assert report.monitoring_overhead == {}


def test_report_contains_estimates_and_overhead_when_enabled():
    report = Simulation(small_config(duration=120.0)).run()
    assert set(report.estimator_estimates) == {"probe", "piggyback", "rtt"}
    assert report.monitoring_overhead["probe"]["probe_operations"] > 0


# ----------------------------------------------------------------------
# Result tables
# ----------------------------------------------------------------------
def test_result_table_rendering_and_csv():
    table = ResultTable("demo", ["name", "value"])
    table.add_row({"name": "a", "value": 1.23456})
    table.add_row({"name": "b", "value": 12345.6})
    text = table.render()
    assert "demo" in text
    assert "a" in text and "b" in text
    csv_text = table.to_csv()
    assert csv_text.splitlines()[0] == "name,value"
    assert len(table) == 2
    assert table.column("name") == ["a", "b"]
    with pytest.raises(KeyError):
        table.column("missing")
    with pytest.raises(ValueError):
        ResultTable("empty", [])


def test_experiment_result_rendering():
    result = ExperimentResult(experiment="EX", description="demo experiment")
    table = result.add_table(ResultTable("t", ["a"]))
    table.add_row({"a": 1})
    result.add_note("a note")
    text = result.render()
    assert "EX" in text
    assert "a note" in text


def test_run_until_stops_workload_at_duration_and_reports_idempotently():
    simulation = Simulation(SimulationConfig(seed=5, duration=40.0))
    simulation.run_until(20.0)
    first = simulation.build_report()
    again = simulation.build_report()
    # Same state, same bill: build_report() must not double-charge.
    assert again.cost.total_cost == first.cost.total_cost
    assert again.cost.monitoring_cost == first.cost.monitoring_cost
    assert simulation.workload._running  # still mid-run

    simulation.run_until(40.0)  # reaching the duration stops the workload
    assert not simulation.workload._running
    final = simulation.build_report()
    final_again = simulation.build_report()
    assert final_again.cost.total_cost == final.cost.total_cost
    assert final.duration >= first.duration


def test_run_until_overshoot_matches_run_workload():
    reference = Simulation(SimulationConfig(seed=5, duration=40.0))
    reference.run()
    stepped = Simulation(SimulationConfig(seed=5, duration=40.0))
    stepped.run_until(100.0)  # overshoot: arrivals must still stop at 40 s
    assert (
        stepped.workload.stats.operations_issued
        == reference.workload.stats.operations_issued
    )
    assert not stepped.workload._running


def test_run_until_can_keep_stepping_past_the_duration():
    simulation = Simulation(SimulationConfig(seed=5, duration=10.0))
    simulation.run_until(15.0)
    issued_at_stop = simulation.workload.stats.operations_issued
    simulation.run_until(20.0)  # must not try to rewind to the duration
    simulation.run_until(25.0)
    assert simulation.simulator.now >= 25.0
    assert simulation.workload.stats.operations_issued == issued_at_stop
    simulation.build_report()  # checkpointing between steps stays safe

"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.simulation import SchedulingError, SimulationStateError, Simulator


def test_clock_starts_at_zero():
    simulator = Simulator(seed=0)
    assert simulator.now == 0.0
    assert simulator.elapsed == 0.0


def test_schedule_and_run_until_advances_clock():
    simulator = Simulator(seed=0)
    fired = []
    simulator.schedule(5.0, lambda: fired.append(simulator.now))
    executed = simulator.run_until(10.0)
    assert executed == 1
    assert fired == [5.0]
    assert simulator.now == 10.0


def test_run_until_does_not_execute_later_events():
    simulator = Simulator(seed=0)
    fired = []
    simulator.schedule(5.0, lambda: fired.append("early"))
    simulator.schedule(15.0, lambda: fired.append("late"))
    simulator.run_until(10.0)
    assert fired == ["early"]
    simulator.run_until(20.0)
    assert fired == ["early", "late"]


def test_schedule_in_uses_relative_delay():
    simulator = Simulator(seed=0)
    times = []
    simulator.schedule_in(2.0, lambda: times.append(simulator.now))
    simulator.run_until(3.0)
    simulator.schedule_in(2.0, lambda: times.append(simulator.now))
    simulator.run_until(6.0)
    assert times == [2.0, 5.0]


def test_scheduling_in_the_past_raises():
    simulator = Simulator(seed=0)
    simulator.run_until(10.0)
    with pytest.raises(SchedulingError):
        simulator.schedule(5.0, lambda: None)
    with pytest.raises(SchedulingError):
        simulator.schedule_in(-1.0, lambda: None)


def test_non_finite_times_rejected():
    simulator = Simulator(seed=0)
    with pytest.raises(SchedulingError):
        simulator.schedule(float("nan"), lambda: None)
    with pytest.raises(SchedulingError):
        simulator.schedule(float("inf"), lambda: None)


def test_run_until_backwards_raises():
    simulator = Simulator(seed=0)
    simulator.run_until(10.0)
    with pytest.raises(SchedulingError):
        simulator.run_until(5.0)


def test_events_scheduled_during_execution_run_in_order():
    simulator = Simulator(seed=0)
    order = []

    def first():
        order.append("first")
        simulator.schedule_in(1.0, lambda: order.append("nested"))

    simulator.schedule(1.0, first)
    simulator.schedule(3.0, lambda: order.append("third"))
    simulator.run_until(10.0)
    assert order == ["first", "nested", "third"]


def test_periodic_task_fires_repeatedly_and_stops():
    simulator = Simulator(seed=0)
    ticks = []
    task = simulator.call_every(1.0, lambda: ticks.append(simulator.now))
    simulator.run_until(5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
    task.stop()
    simulator.run_until(10.0)
    assert len(ticks) == 5
    assert task.stopped


def test_periodic_task_callback_returning_false_stops_it():
    simulator = Simulator(seed=0)
    count = []

    def tick():
        count.append(1)
        return len(count) < 3

    simulator.call_every(1.0, tick)
    simulator.run_until(20.0)
    assert len(count) == 3


def test_periodic_task_interval_change():
    simulator = Simulator(seed=0)
    ticks = []
    task = simulator.call_every(1.0, lambda: ticks.append(simulator.now))
    simulator.run_until(2.5)
    task.set_interval(5.0)
    # The already-scheduled occurrence at t=3 still fires; the new interval
    # applies from the next reschedule onwards.
    simulator.run_until(12.5)
    assert ticks == [1.0, 2.0, 3.0, 8.0]


def test_periodic_task_rejects_non_positive_interval():
    simulator = Simulator(seed=0)
    with pytest.raises(SchedulingError):
        simulator.call_every(0.0, lambda: None)


def test_deterministic_random_streams_with_same_seed():
    values_a = Simulator(seed=42).streams.stream("x").random(5).tolist()
    values_b = Simulator(seed=42).streams.stream("x").random(5).tolist()
    values_c = Simulator(seed=43).streams.stream("x").random(5).tolist()
    assert values_a == values_b
    assert values_a != values_c


def test_stop_prevents_further_scheduling():
    simulator = Simulator(seed=0)
    simulator.schedule(1.0, lambda: None)
    simulator.stop()
    with pytest.raises(SimulationStateError):
        simulator.schedule(2.0, lambda: None)
    assert simulator.pending_events == 0


def test_events_processed_counter():
    simulator = Simulator(seed=0)
    for i in range(5):
        simulator.schedule(float(i + 1), lambda: None)
    simulator.run_until(10.0)
    assert simulator.events_processed == 5


def test_trace_hook_receives_labels():
    simulator = Simulator(seed=0)
    seen = []
    simulator.add_trace_hook(lambda time, label: seen.append((time, label)))
    simulator.schedule(1.0, lambda: None, label="hello")
    simulator.run_until(2.0)
    assert seen == [(1.0, "hello")]


def test_run_until_empty_executes_everything():
    simulator = Simulator(seed=0)
    fired = []
    for i in range(3):
        simulator.schedule(float(i + 1), lambda i=i: fired.append(i))
    executed = simulator.run_until_empty()
    assert executed == 3
    assert fired == [0, 1, 2]


def test_max_events_limit_respected():
    simulator = Simulator(seed=0)
    for i in range(10):
        simulator.schedule(float(i + 1), lambda: None)
    executed = simulator.run_until(100.0, max_events=4)
    assert executed == 4
    assert simulator.pending_events == 6

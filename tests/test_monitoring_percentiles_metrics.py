"""Unit tests for percentile estimators and the metrics collector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, NodeConfig
from repro.monitoring import MetricsCollector, MetricsConfig, P2QuantileEstimator, WindowedPercentiles
from repro.simulation import Simulator
from repro.workload import BALANCED, ConstantLoad, WorkloadGenerator, WorkloadSpec


# ----------------------------------------------------------------------
# P2 quantile estimator
# ----------------------------------------------------------------------
def test_p2_estimator_approximates_true_quantile():
    rng = np.random.default_rng(1)
    samples = rng.exponential(1.0, size=20_000)
    estimator = P2QuantileEstimator(0.95)
    for sample in samples:
        estimator.observe(float(sample))
    true_p95 = float(np.percentile(samples, 95))
    assert estimator.value() == pytest.approx(true_p95, rel=0.1)
    assert estimator.count == 20_000


def test_p2_estimator_small_sample_exact():
    estimator = P2QuantileEstimator(0.5)
    for value in (5.0, 1.0, 3.0):
        estimator.observe(value)
    assert estimator.value() == pytest.approx(3.0)
    assert P2QuantileEstimator(0.5).value() == 0.0


def test_p2_estimator_validation():
    with pytest.raises(ValueError):
        P2QuantileEstimator(0.0)
    with pytest.raises(ValueError):
        P2QuantileEstimator(1.0)


def test_windowed_percentiles_basic():
    window = WindowedPercentiles(window=100)
    window.observe_many(float(i) for i in range(1, 101))
    assert window.percentile(50) == pytest.approx(50.5)
    assert window.mean() == pytest.approx(50.5)
    snapshot = window.snapshot()
    assert snapshot["count"] == 100
    assert snapshot["p99"] >= snapshot["p95"] >= snapshot["p50"]


def test_windowed_percentiles_eviction_and_clear():
    window = WindowedPercentiles(window=10)
    window.observe_many(float(i) for i in range(100))
    assert window.count == 100
    assert window.percentile(0) >= 90.0
    window.clear()
    assert window.percentile(50) == 0.0
    with pytest.raises(ValueError):
        WindowedPercentiles(window=0)


# ----------------------------------------------------------------------
# MetricsCollector
# ----------------------------------------------------------------------
def make_collector(seed=1, rate=150.0, sample_interval=5.0):
    simulator = Simulator(seed=seed)
    cluster = Cluster(
        simulator,
        ClusterConfig(initial_nodes=3, replication_factor=3, node=NodeConfig(ops_capacity=500.0)),
    )
    collector = MetricsCollector(
        simulator, cluster, MetricsConfig(sample_interval=sample_interval)
    )
    workload = WorkloadGenerator(
        simulator,
        cluster,
        WorkloadSpec(record_count=200, operation_mix=BALANCED, load_shape=ConstantLoad(rate)),
    )
    workload.preload()
    workload.start()
    return simulator, cluster, collector, workload


def test_collector_produces_snapshots_with_traffic():
    simulator, _cluster, collector, _workload = make_collector()
    simulator.run_until(60.0)
    latest = collector.latest()
    assert latest is not None
    assert latest.throughput_ops > 0.0
    assert latest.read_p95_latency > 0.0
    assert latest.node_count == 3
    assert 0.0 <= latest.mean_utilization <= 1.0
    assert len(collector.snapshots()) == 12
    assert len(collector.recent(3)) == 3


def test_collector_series_recorded():
    simulator, _cluster, collector, _workload = make_collector()
    simulator.run_until(30.0)
    assert "throughput_ops" in collector.series.names()
    assert "read_latency" in collector.series.names()
    assert len(collector.throughput_series()) >= 5


def test_collector_excludes_probe_operations_by_default():
    simulator, cluster, collector, _workload = make_collector()
    from repro.cluster.types import OperationType

    cluster.write("probe-key", b"p", operation=OperationType.PROBE_WRITE)
    simulator.run_until(10.0)
    # Only checks that the call path does not blow up and probes are not
    # required for snapshots; production traffic dominates anyway.
    assert collector.latest() is not None


def test_collector_snapshot_dict_shape():
    simulator, _cluster, collector, _workload = make_collector()
    simulator.run_until(20.0)
    as_dict = collector.latest().as_dict()
    for key in (
        "throughput_ops",
        "read_p95_latency",
        "failure_fraction",
        "mean_utilization",
        "node_count",
        "stale_read_fraction",
    ):
        assert key in as_dict

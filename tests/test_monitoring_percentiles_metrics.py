"""Unit tests for percentile estimators and the metrics collector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, NodeConfig
from repro.monitoring import MetricsCollector, MetricsConfig, P2QuantileEstimator, WindowedPercentiles
from repro.simulation import Simulator
from repro.workload import BALANCED, ConstantLoad, WorkloadGenerator, WorkloadSpec


# ----------------------------------------------------------------------
# P2 quantile estimator
# ----------------------------------------------------------------------
def test_p2_estimator_approximates_true_quantile():
    rng = np.random.default_rng(1)
    samples = rng.exponential(1.0, size=20_000)
    estimator = P2QuantileEstimator(0.95)
    for sample in samples:
        estimator.observe(float(sample))
    true_p95 = float(np.percentile(samples, 95))
    assert estimator.value() == pytest.approx(true_p95, rel=0.1)
    assert estimator.count == 20_000


def test_p2_estimator_small_sample_exact():
    estimator = P2QuantileEstimator(0.5)
    for value in (5.0, 1.0, 3.0):
        estimator.observe(value)
    assert estimator.value() == pytest.approx(3.0)
    assert P2QuantileEstimator(0.5).value() == 0.0


def test_p2_estimator_validation():
    with pytest.raises(ValueError):
        P2QuantileEstimator(0.0)
    with pytest.raises(ValueError):
        P2QuantileEstimator(1.0)


def test_windowed_percentiles_basic():
    window = WindowedPercentiles(window=100)
    window.observe_many(float(i) for i in range(1, 101))
    assert window.percentile(50) == pytest.approx(50.5)
    assert window.mean() == pytest.approx(50.5)
    snapshot = window.snapshot()
    assert snapshot["count"] == 100
    assert snapshot["p99"] >= snapshot["p95"] >= snapshot["p50"]


def test_windowed_percentiles_eviction_and_clear():
    window = WindowedPercentiles(window=10)
    window.observe_many(float(i) for i in range(100))
    assert window.count == 100
    assert window.percentile(0) >= 90.0
    window.clear()
    assert window.percentile(50) == 0.0
    with pytest.raises(ValueError):
        WindowedPercentiles(window=0)


# ----------------------------------------------------------------------
# MetricsCollector
# ----------------------------------------------------------------------
def make_collector(seed=1, rate=150.0, sample_interval=5.0):
    simulator = Simulator(seed=seed)
    cluster = Cluster(
        simulator,
        ClusterConfig(initial_nodes=3, replication_factor=3, node=NodeConfig(ops_capacity=500.0)),
    )
    collector = MetricsCollector(
        simulator, cluster, MetricsConfig(sample_interval=sample_interval)
    )
    workload = WorkloadGenerator(
        simulator,
        cluster,
        WorkloadSpec(record_count=200, operation_mix=BALANCED, load_shape=ConstantLoad(rate)),
    )
    workload.preload()
    workload.start()
    return simulator, cluster, collector, workload


def test_collector_produces_snapshots_with_traffic():
    simulator, _cluster, collector, _workload = make_collector()
    simulator.run_until(60.0)
    latest = collector.latest()
    assert latest is not None
    assert latest.throughput_ops > 0.0
    assert latest.read_p95_latency > 0.0
    assert latest.node_count == 3
    assert 0.0 <= latest.mean_utilization <= 1.0
    assert len(collector.snapshots()) == 12
    assert len(collector.recent(3)) == 3


def test_collector_series_recorded():
    simulator, _cluster, collector, _workload = make_collector()
    simulator.run_until(30.0)
    assert "throughput_ops" in collector.series.names()
    assert "read_latency" in collector.series.names()
    assert len(collector.throughput_series()) >= 5


def test_collector_excludes_probe_operations_by_default():
    simulator, cluster, collector, _workload = make_collector()
    from repro.cluster.types import OperationType

    cluster.write("probe-key", b"p", operation=OperationType.PROBE_WRITE)
    simulator.run_until(10.0)
    # Only checks that the call path does not blow up and probes are not
    # required for snapshots; production traffic dominates anyway.
    assert collector.latest() is not None


def test_collector_snapshot_dict_shape():
    simulator, _cluster, collector, _workload = make_collector()
    simulator.run_until(20.0)
    as_dict = collector.latest().as_dict()
    for key in (
        "throughput_ops",
        "read_p95_latency",
        "failure_fraction",
        "mean_utilization",
        "node_count",
        "stale_read_fraction",
    ):
        assert key in as_dict


# ----------------------------------------------------------------------
# MergeableHistogramSketch: the sharded-mode merge primitive
# ----------------------------------------------------------------------
def _stream(seed: int, count: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Lognormal latencies spanning several orders of magnitude, the regime
    # the sketch exists for.
    return rng.lognormal(mean=-4.0, sigma=1.5, size=count)


def test_sketch_merge_equals_single_sketch_over_concatenation():
    from repro.monitoring.percentiles import MergeableHistogramSketch

    values = _stream(1, 9_001)
    for shards in (1, 2, 3, 5, 8):
        parts = np.array_split(values, shards)
        shard_sketches = []
        for part in parts:
            sketch = MergeableHistogramSketch()
            sketch.observe_many(part)
            shard_sketches.append(sketch)
        merged = MergeableHistogramSketch.merged(shard_sketches)
        whole = MergeableHistogramSketch()
        whole.observe_many(values)
        # Exact: merging is bin-count addition, so any K and any split must
        # reproduce the single sketch bit for bit.
        assert np.array_equal(merged.bin_counts, whole.bin_counts)
        assert merged.count == whole.count
        assert merged.snapshot() == whole.snapshot()


def test_sketch_merge_is_order_independent():
    from repro.monitoring.percentiles import MergeableHistogramSketch

    parts = [_stream(seed, 1_000 + 137 * seed) for seed in range(4)]
    sketches = []
    for part in parts:
        sketch = MergeableHistogramSketch()
        sketch.observe_many(part)
        sketches.append(sketch)
    forward = MergeableHistogramSketch.merged(sketches)
    backward = MergeableHistogramSketch.merged(list(reversed(sketches)))
    assert np.array_equal(forward.bin_counts, backward.bin_counts)
    assert forward.snapshot() == backward.snapshot()


def test_sketch_merge_uneven_splits_and_scalar_observe_agree():
    from repro.monitoring.percentiles import MergeableHistogramSketch

    values = _stream(7, 2_000)
    # Pathologically uneven split: 1 element / the rest.
    head = MergeableHistogramSketch()
    head.observe(float(values[0]))
    tail = MergeableHistogramSketch()
    tail.observe_many(values[1:])
    merged = MergeableHistogramSketch.merged([head, tail])
    whole = MergeableHistogramSketch()
    whole.observe_many(values)
    assert np.array_equal(merged.bin_counts, whole.bin_counts)


def test_sketch_quantile_error_bound_vs_ground_truth():
    from repro.monitoring.percentiles import MergeableHistogramSketch

    accuracy = 0.01
    values = _stream(3, 20_000)
    sketch = MergeableHistogramSketch(accuracy=accuracy)
    sketch.observe_many(values)
    ordered = np.sort(values)
    for q in (1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9):
        rank = max(1, int(np.ceil(q / 100.0 * ordered.shape[0])))
        truth = float(ordered[rank - 1])
        estimate = sketch.percentile(q)
        assert abs(estimate - truth) <= accuracy * truth + 1e-12, (
            f"p{q}: estimate {estimate} vs truth {truth} exceeds "
            f"{accuracy:.0%} relative error"
        )


def test_sketch_rejects_incompatible_merge():
    from repro.monitoring.percentiles import MergeableHistogramSketch

    a = MergeableHistogramSketch(accuracy=0.01)
    b = MergeableHistogramSketch(accuracy=0.02)
    with pytest.raises(ValueError):
        a.merge(b)


def test_sketch_zero_and_out_of_range_values():
    from repro.monitoring.percentiles import MergeableHistogramSketch

    sketch = MergeableHistogramSketch(min_value=1e-6, max_value=10.0)
    sketch.observe(0.0)
    sketch.observe(-1.0)
    sketch.observe(1e-12)  # below min: clamped into the first bin
    sketch.observe(1e6)  # above max: clamped into the last bin
    assert sketch.count == 4
    # Zero/negative dominate the low quantiles.
    assert sketch.percentile(25.0) == 0.0
    assert sketch.percentile(99.0) <= 10.0 * (1.0 + 0.01)


def test_sketch_mean_is_exact():
    from repro.monitoring.percentiles import MergeableHistogramSketch

    values = _stream(5, 512)
    sketch = MergeableHistogramSketch()
    sketch.observe_many(values)
    assert sketch.mean() == pytest.approx(float(np.mean(values)), rel=1e-12)


def test_sketch_pickle_roundtrip_preserves_counts():
    import pickle

    from repro.monitoring.percentiles import MergeableHistogramSketch

    sketch = MergeableHistogramSketch()
    sketch.observe_many(_stream(9, 300))
    clone = pickle.loads(pickle.dumps(sketch))
    assert np.array_equal(clone.bin_counts, sketch.bin_counts)
    assert clone.snapshot() == sketch.snapshot()
    # The clone keeps merging correctly (the property shard results rely on).
    merged = MergeableHistogramSketch.merged([sketch, clone])
    assert merged.count == 2 * sketch.count

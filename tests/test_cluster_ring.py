"""Unit tests for the consistent-hash ring."""

from __future__ import annotations

import pytest

from repro.cluster import ConfigurationError, HashRing, UnknownNodeError, hash_key


def make_ring(nodes, vnodes=32):
    ring = HashRing(virtual_nodes=vnodes)
    for node in nodes:
        ring.add_node(node)
    return ring


def test_hash_key_is_deterministic_and_64bit():
    assert hash_key("abc") == hash_key("abc")
    assert hash_key("abc") != hash_key("abd")
    assert 0 <= hash_key("anything") < 2**64


def test_preference_list_size_and_uniqueness():
    ring = make_ring(["a", "b", "c", "d"])
    for key in ("k1", "k2", "k3", "user42"):
        prefs = ring.preference_list(key, 3)
        assert len(prefs) == 3
        assert len(set(prefs)) == 3


def test_preference_list_clamps_to_cluster_size():
    ring = make_ring(["a", "b"])
    assert len(ring.preference_list("k", 5)) == 2


def test_preference_list_stable_for_same_key():
    ring = make_ring(["a", "b", "c"])
    assert ring.preference_list("k", 3) == ring.preference_list("k", 3)


def test_rf_prefix_property():
    """The RF=2 preference list must be a prefix of the RF=3 list."""
    ring = make_ring(["a", "b", "c", "d", "e"])
    for i in range(50):
        key = f"key-{i}"
        two = ring.preference_list(key, 2)
        three = ring.preference_list(key, 3)
        assert three[:2] == two


def test_add_duplicate_node_rejected():
    ring = make_ring(["a"])
    with pytest.raises(ConfigurationError):
        ring.add_node("a")


def test_remove_unknown_node_rejected():
    ring = make_ring(["a"])
    with pytest.raises(UnknownNodeError):
        ring.remove_node("b")


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        HashRing(virtual_nodes=0)
    ring = make_ring(["a"])
    with pytest.raises(ConfigurationError):
        ring.preference_list("k", 0)


def test_empty_ring_returns_empty_placement():
    ring = HashRing()
    assert ring.preference_list("k", 3) == []
    assert ring.primary("k") is None


def test_remove_node_excludes_it_from_placement():
    ring = make_ring(["a", "b", "c", "d"])
    ring.remove_node("c")
    assert "c" not in ring.nodes
    for i in range(100):
        assert "c" not in ring.preference_list(f"key-{i}", 3)


def test_adding_node_moves_limited_fraction_of_keys():
    before = make_ring(["a", "b", "c", "d"], vnodes=64)
    after = before.copy()
    after.add_node("e")
    moved = before.moved_fraction(after, sample_keys=1000)
    # Consistent hashing: roughly 1/5 of the keys move, never the majority.
    assert moved < 0.45
    assert moved > 0.02


def test_ownership_is_reasonably_balanced():
    ring = make_ring(["a", "b", "c", "d"], vnodes=128)
    fractions = ring.ownership_fractions(sample_keys=4096)
    assert set(fractions) == {"a", "b", "c", "d"}
    assert sum(fractions.values()) == pytest.approx(1.0, abs=0.01)
    for fraction in fractions.values():
        assert 0.10 < fraction < 0.45


def test_copy_is_independent():
    ring = make_ring(["a", "b"])
    clone = ring.copy()
    clone.add_node("c")
    assert "c" in clone
    assert "c" not in ring


def test_contains_and_size():
    ring = make_ring(["a", "b"])
    assert "a" in ring
    assert "z" not in ring
    assert ring.size == 2
    assert ring.nodes == ("a", "b")

"""Unit tests for the PBS-style analytical staleness model."""

from __future__ import annotations

import pytest

from repro.cluster import ConsistencyLevel
from repro.consistency import StalenessModel


def test_quorum_intersection_is_never_stale():
    model = StalenessModel(mean_replication_lag=0.5)
    # R + W > N -> stale probability 0 regardless of time or lag.
    assert model.stale_probability(0.0, 3, read_acks=2, write_acks=2) == 0.0
    assert model.stale_probability(0.0, 3, read_acks=3, write_acks=1) == 0.0
    assert model.stale_probability(0.0, 5, read_acks=3, write_acks=3) == 0.0


def test_weak_levels_have_positive_stale_probability():
    model = StalenessModel(mean_replication_lag=0.5)
    p = model.stale_probability(0.0, 3, read_acks=1, write_acks=1)
    assert 0.0 < p < 1.0
    # With one replica guaranteed fresh out of three, a single-read miss
    # probability immediately after the ack is 2/3.
    assert p == pytest.approx(2.0 / 3.0, abs=1e-6)


def test_stale_probability_decreases_with_time():
    model = StalenessModel(mean_replication_lag=0.2)
    probabilities = [
        model.stale_probability(t, 3, read_acks=1, write_acks=1) for t in (0.0, 0.1, 0.5, 2.0)
    ]
    assert probabilities == sorted(probabilities, reverse=True)
    assert probabilities[-1] < 0.05


def test_stale_probability_decreases_with_more_read_acks():
    model = StalenessModel(mean_replication_lag=0.5)
    one = model.stale_probability(0.05, 5, read_acks=1, write_acks=1)
    two = model.stale_probability(0.05, 5, read_acks=2, write_acks=1)
    three = model.stale_probability(0.05, 5, read_acks=3, write_acks=1)
    assert one > two > three


def test_stale_probability_decreases_with_more_write_acks():
    model = StalenessModel(mean_replication_lag=0.5)
    w1 = model.stale_probability(0.05, 5, read_acks=1, write_acks=1)
    w3 = model.stale_probability(0.05, 5, read_acks=1, write_acks=3)
    assert w1 > w3


def test_zero_lag_means_always_fresh():
    model = StalenessModel(mean_replication_lag=0.0)
    assert model.stale_probability(0.0, 3, 1, 1) == 0.0


def test_level_wrapper_matches_ack_counts():
    model = StalenessModel(mean_replication_lag=0.3)
    by_level = model.stale_probability_for_levels(
        0.1, 3, ConsistencyLevel.ONE, ConsistencyLevel.ONE
    )
    by_acks = model.stale_probability(0.1, 3, 1, 1)
    assert by_level == pytest.approx(by_acks)


def test_time_to_stale_probability_monotone_in_target():
    model = StalenessModel(mean_replication_lag=0.5)
    strict = model.time_to_stale_probability(0.001, 3, 1, 1)
    loose = model.time_to_stale_probability(0.1, 3, 1, 1)
    assert strict > loose > 0.0


def test_time_to_stale_probability_zero_for_strong_config():
    model = StalenessModel(mean_replication_lag=0.5)
    assert model.time_to_stale_probability(0.01, 3, 2, 2) == 0.0


def test_time_to_stale_probability_horizon_cap():
    model = StalenessModel(mean_replication_lag=100.0)
    assert model.time_to_stale_probability(0.0001, 3, 1, 1, horizon=1.0) == 1.0


def test_predict_structure():
    model = StalenessModel(mean_replication_lag=0.2)
    prediction = model.predict(3, ConsistencyLevel.ONE, ConsistencyLevel.ONE)
    assert prediction.read_acks == 1
    assert prediction.write_acks == 1
    assert prediction.stale_probability_now > 0.0
    assert set(prediction.time_to_probability) == {0.1, 0.01, 0.001}
    flat = prediction.as_dict()
    assert flat["replication_factor"] == 3.0


def test_expected_window_quantile():
    model = StalenessModel(mean_replication_lag=1.0)
    median = model.expected_window_p(0.5)
    p95 = model.expected_window_p(0.95)
    assert median == pytest.approx(0.693, abs=0.01)
    assert p95 > median


def test_invalid_parameters_raise():
    with pytest.raises(ValueError):
        StalenessModel(mean_replication_lag=-1.0)
    model = StalenessModel(mean_replication_lag=0.1)
    with pytest.raises(ValueError):
        model.stale_probability(0.0, 0, 1, 1)
    with pytest.raises(ValueError):
        model.time_to_stale_probability(1.5, 3, 1, 1)
    with pytest.raises(ValueError):
        model.expected_window_p(1.5)
    with pytest.raises(ValueError):
        model.update_lag(-0.1)


def test_update_lag_changes_predictions():
    model = StalenessModel(mean_replication_lag=0.1)
    fast = model.stale_probability(0.2, 3, 1, 1)
    model.update_lag(5.0)
    slow = model.stale_probability(0.2, 3, 1, 1)
    assert slow > fast

"""Unit tests for the network latency / congestion / partition model."""

from __future__ import annotations

import pytest

from repro.simulation import NetworkConfig, NetworkModel, Simulator


def make_network(simulator, **overrides):
    config = NetworkConfig(**overrides)
    return NetworkModel(simulator, config)


def test_send_delivers_after_latency():
    simulator = Simulator(seed=0)
    network = make_network(simulator, jitter_cv=0.0, base_latency=0.001)
    delivered = []
    network.send("a", "b", lambda: delivered.append(simulator.now))
    simulator.run_until(1.0)
    assert len(delivered) == 1
    assert delivered[0] == pytest.approx(0.001, rel=0.01)


def test_client_facing_latency_is_larger():
    simulator = Simulator(seed=0)
    network = make_network(simulator, jitter_cv=0.0, base_latency=0.001, client_latency=0.01)
    assert network.sample_latency(client_facing=False) == pytest.approx(0.001)
    assert network.sample_latency(client_facing=True) == pytest.approx(0.01)


def test_partition_drops_messages_and_calls_on_drop():
    simulator = Simulator(seed=0)
    network = make_network(simulator)
    network.partition({"a"}, {"b"})
    delivered, dropped = [], []
    ok = network.send("a", "b", lambda: delivered.append(1), on_drop=lambda: dropped.append(1))
    simulator.run_until(1.0)
    assert not ok
    assert delivered == []
    assert dropped == [1]
    assert network.messages_dropped == 1


def test_partition_is_symmetric_and_healable():
    simulator = Simulator(seed=0)
    network = make_network(simulator)
    network.partition({"a"}, {"b", "c"})
    assert network.is_partitioned("b", "a")
    assert network.is_partitioned("a", "c")
    assert not network.is_partitioned("b", "c")
    assert network.has_partition
    network.heal_partition()
    assert not network.is_partitioned("a", "b")
    assert not network.has_partition


def test_unrelated_pairs_unaffected_by_partition():
    simulator = Simulator(seed=0)
    network = make_network(simulator)
    network.partition({"a"}, {"b"})
    delivered = []
    assert network.send("c", "d", lambda: delivered.append(1))
    simulator.run_until(1.0)
    assert delivered == [1]


def test_congestion_factor_grows_when_capacity_exceeded():
    simulator = Simulator(seed=0)
    network = make_network(
        simulator,
        capacity_msgs_per_sec=100.0,
        congestion_window=0.5,
        jitter_cv=0.0,
    )
    # Push far more than 100 msgs/s for over a second of simulated time.
    for i in range(400):
        simulator.schedule(i * 0.005, lambda: network.send("a", "b", lambda: None))
    simulator.run_until(3.0)
    assert network.congestion_factor > 1.0


def test_congestion_factor_bounded_by_max():
    simulator = Simulator(seed=0)
    network = make_network(
        simulator,
        capacity_msgs_per_sec=1.0,
        congestion_window=0.5,
        max_congestion_factor=5.0,
    )
    for i in range(500):
        simulator.schedule(i * 0.002, lambda: network.send("a", "b", lambda: None))
    simulator.run_until(2.0)
    assert network.congestion_factor <= 5.0


def test_external_load_factor_increases_congestion():
    simulator = Simulator(seed=0)
    network = make_network(simulator, capacity_msgs_per_sec=200.0, congestion_window=0.5)
    network.set_external_load_factor(50.0)
    for i in range(300):
        simulator.schedule(i * 0.01, lambda: network.send("a", "b", lambda: None))
    simulator.run_until(4.0)
    assert network.congestion_factor > 1.0


def test_round_trip_estimate_scales_with_congestion():
    simulator = Simulator(seed=0)
    network = make_network(simulator, base_latency=0.001, jitter_cv=0.0)
    baseline = network.round_trip_estimate()
    assert baseline == pytest.approx(0.002)


def test_messages_sent_counter():
    simulator = Simulator(seed=0)
    network = make_network(simulator)
    for _ in range(5):
        network.send("a", "b", lambda: None)
    assert network.messages_sent == 5

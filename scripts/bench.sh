#!/usr/bin/env bash
# Record the kernel / data-plane throughput trajectory in BENCH_kernel.json.
#
# Usage:
#   scripts/bench.sh            # full run, refuses >20% regressions
#   scripts/bench.sh --force    # record even if a rate regressed
#   scripts/bench.sh --quick    # smaller run (CI smoke, noisier numbers)
#
# All arguments are forwarded to benchmarks/bench_kernel.py.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

PYTHONPATH=src exec python benchmarks/bench_kernel.py --json BENCH_kernel.json "$@"

"""Shared helpers for the benchmark suite.

Every benchmark runs one experiment from :mod:`repro.experiments` exactly once
(``rounds=1, iterations=1`` — these are system simulations, not micro
benchmarks), renders its result tables, stores them under
``benchmarks/results/`` and prints them so the captured benchmark output is
the regenerated experiment table.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

#: Scale factor applied to every experiment when run from the benchmark suite.
#: 1.0 reproduces the durations documented in EXPERIMENTS.md; the default is
#: reduced so the whole suite completes in a few minutes.
BENCH_SCALE = 0.35

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_experiment_benchmark(benchmark, module, experiment_id: str, seed: int = 1, **kwargs):
    """Run one experiment once under pytest-benchmark and persist its tables."""
    result_holder = {}

    def _run():
        result_holder["result"] = module.run(seed=seed, scale=BENCH_SCALE, **kwargs)
        return result_holder["result"]

    benchmark.pedantic(_run, rounds=1, iterations=1)
    result = result_holder["result"]

    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = result.render()
    (RESULTS_DIR / f"{experiment_id.lower()}.txt").write_text(rendered + "\n")
    print(f"\n{rendered}\n", file=sys.stderr)
    return result

"""Benchmark / regeneration target for experiment E6 (predictive scaling).

Regenerates the forecaster-comparison table (DESIGN.md experiment E6, the
"smart" half of the paper's title): reactive threshold scaling versus
forecast-based scaling with EWMA, Holt-Winters and autoregressive
forecasters on a flash-crowd-heavy trace.  The assertions check the expected
shape: every variant scales, and the best predictive variant spends no more
time above the utilisation ceiling (i.e. is never later with capacity) than
the reactive baseline.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments import e6_predictive


def test_e6_predictive(benchmark):
    result = run_experiment_benchmark(benchmark, e6_predictive, "E6")
    table = result.tables[0]
    rows = {row["variant"]: row for row in table.rows}
    assert set(rows) == {
        "reactive",
        "predictive_ewma",
        "predictive_holt_winters",
        "predictive_ar",
    }

    # Every policy scaled out at least once for the surges.
    for row in rows.values():
        assert row["scale_out_actions"] >= 1

    reactive = rows["reactive"]
    best_predictive_lateness = min(
        rows[name]["seconds_above_ceiling"]
        for name in ("predictive_ewma", "predictive_holt_winters", "predictive_ar")
    )
    # Forecast-based provisioning is never later with capacity than reacting.
    assert best_predictive_lateness <= reactive["seconds_above_ceiling"] + 1e-6

    best_predictive_violation = min(
        rows[name]["violation_seconds"]
        for name in ("predictive_ewma", "predictive_holt_winters", "predictive_ar")
    )
    assert best_predictive_violation <= reactive["violation_seconds"] + 1e-6

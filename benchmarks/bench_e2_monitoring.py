"""Benchmark / regeneration target for experiment E2 (monitoring efficiency).

Regenerates the "accuracy versus overhead of inconsistency-window estimators"
table (DESIGN.md experiment E2, paper research question 1).  The assertions
check the qualitative shape: probing cost scales with the probe rate, the
passive estimators inject zero extra operations, and every estimator produced
periodic estimates.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments import e2_monitoring


def test_e2_monitoring(benchmark):
    result = run_experiment_benchmark(benchmark, e2_monitoring, "E2")
    table = result.tables[0]

    probe_rows = sorted(
        (row for row in table.rows if row["estimator"] == "probe"),
        key=lambda row: row["probe_interval_s"],
    )
    assert len(probe_rows) >= 2
    # More frequent probing issues more probe operations and a larger load share.
    assert probe_rows[0]["probe_ops"] > probe_rows[-1]["probe_ops"]
    assert probe_rows[0]["probe_load_fraction"] >= probe_rows[-1]["probe_load_fraction"]

    passive_rows = [row for row in table.rows if row["estimator"] in ("piggyback", "rtt")]
    assert passive_rows
    for row in passive_rows:
        assert row["probe_ops"] == 0
        assert row["probe_load_fraction"] == 0.0

    for row in table.rows:
        assert row["estimates"] > 0

"""Benchmark / regeneration target for experiment E3 (SLA-derived configuration).

Regenerates the "deriving consistency-related parameters from the SLA" grid
(DESIGN.md experiment E3, paper research question 2).  The assertions check
the qualitative shape: the strict SLA pushes the controller to stricter
consistency levels (or extra capacity) than the relaxed SLA, and the relaxed
SLA stays cheap.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.cluster import ConsistencyLevel
from repro.experiments import e3_sla_derivation


def _strictness(level_name: str) -> int:
    return ConsistencyLevel(level_name).strictness


def test_e3_sla_derivation(benchmark):
    result = run_experiment_benchmark(benchmark, e3_sla_derivation, "E3")
    table = result.tables[0]
    assert len(table) == 9

    by_sla = {}
    for row in table.rows:
        by_sla.setdefault(row["sla"], []).append(row)

    strict_effort = sum(
        _strictness(row["final_read_cl"]) + _strictness(row["final_write_cl"]) + row["final_nodes"]
        for row in by_sla["strict"]
    )
    relaxed_effort = sum(
        _strictness(row["final_read_cl"]) + _strictness(row["final_write_cl"]) + row["final_nodes"]
        for row in by_sla["relaxed"]
    )
    # The strict SLA must cost more effort (stricter levels and/or more nodes).
    assert strict_effort >= relaxed_effort

    # The controller actually reconfigured something somewhere in the grid.
    total_actions = sum(row["consistency_actions"] + row["scaling_actions"] for row in table.rows)
    assert total_actions > 0

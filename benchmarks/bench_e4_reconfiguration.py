"""Benchmark / regeneration target for experiment E4 (reconfiguration overhead).

Regenerates both E4 tables (DESIGN.md experiment E4, paper research question
3): the per-action transient-impact table and the stability-guard ablation.
The assertions check the qualitative shape: adding a node eventually lowers
utilisation but costs something while rebalancing, strengthening the read
consistency level raises read latency, and the stability guard never executes
more scaling actions than the unguarded controller.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments import e4_reconfiguration


def _phase(table, action, phase):
    for row in table.rows:
        if row["action"] == action and row["phase"] == phase:
            return row
    raise AssertionError(f"missing row {action}/{phase}")


def test_e4_reconfiguration(benchmark):
    result = run_experiment_benchmark(benchmark, e4_reconfiguration, "E4")
    action_table, stability_table = result.tables

    # Adding a node lowers steady-state utilisation relative to doing nothing.
    baseline_after = _phase(action_table, "baseline_no_action", "after")
    add_after = _phase(action_table, "add_node", "after")
    assert add_after["mean_utilization"] < baseline_after["mean_utilization"]

    # Strengthening reads costs read latency in steady state.
    quorum_after = _phase(action_table, "read_cl_one_to_quorum", "after")
    assert quorum_after["read_p95_ms"] > baseline_after["read_p95_ms"] * 0.9

    # Removing a node raises utilisation on the survivors.
    remove_after = _phase(action_table, "remove_node", "after")
    assert remove_after["mean_utilization"] > add_after["mean_utilization"]

    # Stability ablation: the guarded controller executes no more scaling
    # actions than the unguarded one and never oscillates more.
    guarded = next(row for row in stability_table.rows if row["variant"] == "guard_enabled")
    unguarded = next(row for row in stability_table.rows if row["variant"] == "guard_disabled")
    assert guarded["actions_executed"] <= unguarded["actions_executed"]
    assert guarded["direction_flips"] <= unguarded["direction_flips"]

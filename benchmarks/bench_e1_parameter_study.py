"""Benchmark / regeneration target for experiment E1 (parameter study).

Regenerates the table "inconsistency window versus load, cluster size,
replication factor and read consistency level" (DESIGN.md experiment E1,
paper research-plan task 1).  The assertions check the qualitative shape the
paper's problem statement predicts: the window grows with load and shrinks
with added capacity, and quorum reads suppress client-observed staleness.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments import e1_parameter_study


def test_e1_parameter_study(benchmark):
    result = run_experiment_benchmark(benchmark, e1_parameter_study, "E1")
    table = result.tables[0]

    load_rows = [row for row in table.rows if row["sweep"] == "load"]
    assert len(load_rows) >= 3
    # Window grows with offered load (compare the lightest and heaviest points).
    assert load_rows[-1]["window_p95_ms"] > load_rows[0]["window_p95_ms"]

    node_rows = sorted(
        (row for row in table.rows if row["sweep"] == "nodes"), key=lambda r: r["nodes"]
    )
    # Adding nodes at the same offered load lowers utilisation.
    assert node_rows[-1]["mean_utilization"] < node_rows[0]["mean_utilization"]

    cl_rows = {row["read_cl"]: row for row in table.rows if row["sweep"] == "read_consistency"}
    if "ONE" in cl_rows and "QUORUM" in cl_rows:
        # Stricter read levels mask staleness from clients but cost latency.
        assert cl_rows["QUORUM"]["stale_fraction"] <= cl_rows["ONE"]["stale_fraction"]
        assert cl_rows["QUORUM"]["read_p95_ms"] >= cl_rows["ONE"]["read_p95_ms"]

"""Benchmark / regeneration target for experiment E5 (policy comparison).

Regenerates the headline end-to-end table (DESIGN.md experiment E5, paper
Sections 3-4): static, overprovisioned, reactive, predictive and SLA-driven
policies serving the same diurnal-plus-flash-crowd day.  The assertions check
the qualitative claims of the paper: the SLA-driven controller violates the
SLA (much) less than the static deployment, uses fewer node-hours than the
peak-provisioned deployment, and is the only policy that touches the
consistency knobs.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments import e5_autoscaling


def test_e5_autoscaling(benchmark):
    result = run_experiment_benchmark(benchmark, e5_autoscaling, "E5")
    table = result.tables[0]
    rows = {row["policy"]: row for row in table.rows}
    assert set(rows) == {"static", "overprovisioned", "reactive", "predictive", "sla_driven"}

    static = rows["static"]
    overprovisioned = rows["overprovisioned"]
    sla_driven = rows["sla_driven"]

    # The static launch configuration suffers the most violation time.
    assert sla_driven["violation_seconds"] <= static["violation_seconds"]
    # Peak provisioning buys compliance with the largest node-hour bill.
    assert overprovisioned["node_hours"] >= max(
        rows[name]["node_hours"] for name in ("static", "reactive", "predictive", "sla_driven")
    )
    # The SLA-driven controller stays well below the peak-provisioned bill.
    assert sla_driven["node_hours"] < overprovisioned["node_hours"]
    # Only the SLA-driven policy exercises the consistency knobs.
    assert sla_driven["consistency_actions"] >= 0
    for name in ("static", "overprovisioned", "reactive", "predictive"):
        assert rows[name]["consistency_actions"] == 0
    # The adaptive policies actually scaled.
    for name in ("reactive", "predictive", "sla_driven"):
        assert rows[name]["scaling_actions"] >= 1

"""Kernel and data-plane throughput benchmark.

Measures two rates on the current machine and records them in
``BENCH_kernel.json`` (via ``scripts/bench.sh``):

* **kernel events/sec** — a pure event-loop microbenchmark: a fixed
  population of self-rescheduling callback chains plus a stream of
  schedule-then-cancel events, so ``schedule``/``heappush``/``heappop``/
  cancelled-head skipping dominate and no component logic or RNG is
  involved.  This isolates the cost the simulation kernel adds to every
  single arrival, replica hop and metric flush.
* **end-to-end ops/sec** — a short default-config :class:`~repro.runner.
  Simulation` run (the paper's single-tenant scenario), measuring completed
  client operations and events per wall-clock second through the full data
  plane: workload generator, coordinator, replicas, network, monitoring.

Further sections track the hedged stack (under fail-slow interference, so
hedges actually fire), the multi-tenant stack, and the sharded parallel mode
(aggregate events/sec across ``--shards`` worker processes — scales with
``min(shards, cores)``; the record carries ``cpu_count`` so the number can be
read in context).

The script refuses to overwrite ``BENCH_kernel.json`` with a >20% regression
on any headline rate unless ``--force`` is given, establishing the repo's
performance trajectory from this file's history.  Records carry a machine
fingerprint (machine, python, cpu_count); when the previous record was taken
on different hardware the gate refuses the comparison loudly and re-anchors
instead of silently gating against incomparable numbers.

Run standalone (works against any checkout, which is how the pre-PR baseline
was captured)::

    PYTHONPATH=src python benchmarks/bench_kernel.py --json BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.runner import Simulation, SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.workload.distributions import ZipfianKeys
from repro.workload.operations import RecordSizer

#: Refuse to record a run whose rate is below this fraction of the last one.
REGRESSION_FLOOR = 0.8


def _cpu_count() -> int:
    """Cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _fingerprint(record: dict) -> dict:
    """The hardware/runtime identity a rate comparison is only valid within."""
    return {
        "machine": record.get("machine"),
        "python": record.get("python"),
        "cpu_count": record.get("cpu_count"),
    }


# ----------------------------------------------------------------------
# Kernel microbenchmark
# ----------------------------------------------------------------------
def bench_kernel_events(
    chains: int = 512, events: int = 400_000, cancel_every: int = 5
) -> dict:
    """Events per second through the bare kernel (no components, no RNG).

    ``chains`` self-rescheduling callbacks keep the heap at a realistic
    size; every ``cancel_every``-th firing also schedules a decoy event and
    immediately cancels it, exercising the cancelled-head skip path the way
    operation timeouts do in the real data plane.
    """
    sim = Simulator(seed=0)
    counter = [0]

    def make_chain(index: int):
        # Deterministic per-chain delays without RNG: a Weyl sequence keeps
        # the heap well mixed so pops are not trivially ordered.
        state = [index * 2654435761 % 1_000_003]

        def fire() -> None:
            counter[0] += 1
            if counter[0] >= events:
                return  # chain ends; the queue drains and run_until returns
            state[0] = (state[0] * 48271 + 11) % 1_000_003
            delay = 1e-6 + (state[0] / 1_000_003) * 1e-3
            if counter[0] % cancel_every == 0:
                sim.schedule_in(delay * 2.0, _noop).cancel()
            sim.schedule_in(delay, fire)

        return fire

    def _noop() -> None:  # pragma: no cover - cancelled before firing
        pass

    for index in range(chains):
        sim.schedule_in(1e-6 * (index + 1), make_chain(index))

    # Chains self-terminate at the event budget instead of passing
    # ``max_events``: real experiments run the engine's unbudgeted fast
    # loop, and that is the path this rate must gate.
    start = time.perf_counter()
    executed = sim.run_until(1e9)
    wall = time.perf_counter() - start
    queue_stats = sim.queue_stats()
    return {
        "events": executed,
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(executed / wall, 1),
        "chains": chains,
        # Heap-churn counters: how many cancelled corpses the pop path had
        # to sift, and how deep the heap ever got.
        "cancelled_skipped": queue_stats["cancelled_skipped"],
        "peak_pending": queue_stats["peak_pending"],
    }


# ----------------------------------------------------------------------
# Workload-primitive benchmark (chunked vs scalar draws)
# ----------------------------------------------------------------------
def bench_workload_draws(draws: int = 200_000, chunk: int = 4096) -> dict:
    """Draw rates of the workload primitives, chunked vs scalar.

    Measures the YCSB-style Zipfian key draw and the lognormal record-size
    draw both one-at-a-time (how the open-loop arrival path must consume
    them — the draw types interleave on one stream) and in chunks (how the
    preload and any future single-consumer stream can).  Chunked draws are
    bitwise-equal to scalar ones (see tests/test_seed_identity.py), so this
    section tracks how much headroom batching buys as numpy/kernel versions
    move.
    """
    result: dict = {"draws": draws, "chunk": chunk}

    distribution = ZipfianKeys(10_000, theta=0.99)
    rng = RandomStreams(0).stream("bench:keys")
    start = time.perf_counter()
    for _ in range(draws // 10):  # scalar path is ~2 orders slower; sample it
        distribution.next_index(rng)
    scalar_wall = (time.perf_counter() - start) * 10.0
    rng = RandomStreams(0).stream("bench:keys")
    start = time.perf_counter()
    for _ in range(draws // chunk):
        distribution.next_indices(rng, chunk)
    chunked_wall = time.perf_counter() - start
    result["zipfian_scalar_per_sec"] = round(draws / scalar_wall, 1)
    result["zipfian_chunked_per_sec"] = round((draws // chunk) * chunk / chunked_wall, 1)

    sizer = RecordSizer()
    rng = RandomStreams(0).stream("bench:sizes")
    start = time.perf_counter()
    for _ in range(draws // 10):
        sizer.next_size(rng)
    scalar_wall = (time.perf_counter() - start) * 10.0
    rng = RandomStreams(0).stream("bench:sizes")
    start = time.perf_counter()
    for _ in range(draws // chunk):
        sizer.next_sizes(rng, chunk)
    chunked_wall = time.perf_counter() - start
    result["size_scalar_per_sec"] = round(draws / scalar_wall, 1)
    result["size_chunked_per_sec"] = round((draws // chunk) * chunk / chunked_wall, 1)
    return result


# ----------------------------------------------------------------------
# End-to-end data-plane benchmark
# ----------------------------------------------------------------------
def bench_end_to_end(duration: float = 300.0, seed: int = 42) -> dict:
    """Completed client ops (and events) per wall second, default config."""
    config = SimulationConfig(seed=seed, duration=duration)
    simulation = Simulation(config)
    start = time.perf_counter()
    report = simulation.run()
    wall = time.perf_counter() - start
    completed = report.workload_summary["operations_completed"]
    return {
        "sim_duration": duration,
        "seed": seed,
        "wall_seconds": round(wall, 4),
        "operations_completed": int(completed),
        "ops_per_sec": round(completed / wall, 1),
        "events_processed": report.events_processed,
        "events_per_sec": round(report.events_processed / wall, 1),
    }


def bench_hedged_stack(duration: float = 300.0, seed: int = 42) -> dict:
    """Like :func:`bench_end_to_end` but through the hedged request pipeline.

    The tail-latency stack adds per-read work (hedge timer arm/cancel, EWMA
    ranking, write fan-out ordering) to the hottest path in the data plane;
    this section keeps that overhead honest under the same regression gate
    as the default stack.

    The scenario runs under mild fail-slow interference (the E7 noisy
    neighbour: 30% of nodes degraded to 25% severity).  Under the default
    quiet cluster replicas answer well inside the hedge budget, so no hedge
    ever fires and the section only measured the *arming* overhead — the
    fire/cancel/merge path (the part hedging exists for) went unexercised
    and the record showed ``hedges_fired: 0``.  Interference pushes a
    realistic fraction of reads past the budget; the section asserts at
    least one hedge fired so the record can never silently regress back to
    benchmarking a no-op.
    """
    from repro.middleware import HEDGED_PIPELINE
    from repro.simulation.interference import InterferenceConfig

    config = SimulationConfig(
        seed=seed,
        duration=duration,
        middleware=HEDGED_PIPELINE,
        interference=InterferenceConfig(
            noisy_neighbour_probability=0.3, noisy_neighbour_severity=0.25
        ),
    )
    simulation = Simulation(config)
    start = time.perf_counter()
    report = simulation.run()
    wall = time.perf_counter() - start
    completed = report.workload_summary["operations_completed"]
    hedging = simulation.pipeline.get("request-hedging")
    hedges_fired = hedging.hedges_fired if hedging else 0
    if hedges_fired <= 0:
        raise RuntimeError(
            "hedged bench fired no hedges under fail-slow interference; "
            "the section is measuring a no-op (budget source or interference "
            "wiring broke)"
        )
    queue_stats = simulation.simulator.queue_stats()
    timer_stats = simulation.cluster.coordinator.timer_stats()
    return {
        "sim_duration": duration,
        "seed": seed,
        "interference": "fail-slow p=0.3 severity=0.25",
        "wall_seconds": round(wall, 4),
        "operations_completed": int(completed),
        "ops_per_sec": round(completed / wall, 1),
        "events_processed": report.events_processed,
        "events_per_sec": round(report.events_processed / wall, 1),
        "hedges_armed": hedging.hedges_armed if hedging else 0,
        "hedges_fired": hedges_fired,
        # Heap-churn view of the timer amortisation (PERFORMANCE.md rule
        # 11): wheel counters plus how many cancelled corpses still reached
        # the heap and had to be sifted out.
        "cancelled_skipped": queue_stats["cancelled_skipped"],
        "peak_pending": queue_stats["peak_pending"],
        "timers_armed": timer_stats.get("timers_armed", 0),
        "timers_wheeled": timer_stats.get("timers_wheeled", 0),
        "timers_cancelled": timer_stats.get("timers_cancelled", 0),
        "timers_promoted": timer_stats.get("timers_promoted", 0),
    }


def bench_tenant_stack(duration: float = 300.0, seed: int = 42) -> dict:
    """Like :func:`bench_end_to_end` but multi-tenant with admission control.

    Every operation additionally draws a tenant (one uniform on a dedicated
    stream + a cumulative-weight search), carries tenant hints through the
    pipeline, pays the admission stage's token-bucket check and feeds the
    per-tenant rollup.  This section keeps that per-operation overhead
    honest under the same regression gate as the default stack.
    """
    from repro.middleware import ADMISSION_CONTROL_PIPELINE
    from repro.workload.tenants import TenantSpec

    config = SimulationConfig(seed=seed, duration=duration)
    config.workload.tenants = TenantSpec(tenants=200, records_per_tenant=25)
    config.middleware = ADMISSION_CONTROL_PIPELINE
    simulation = Simulation(config)
    start = time.perf_counter()
    report = simulation.run()
    wall = time.perf_counter() - start
    completed = report.workload_summary["operations_completed"]
    admission = simulation.pipeline.get("admission-control")
    return {
        "sim_duration": duration,
        "seed": seed,
        "tenants": 200,
        "wall_seconds": round(wall, 4),
        "operations_completed": int(completed),
        "ops_per_sec": round(completed / wall, 1),
        "events_processed": report.events_processed,
        "events_per_sec": round(report.events_processed / wall, 1),
        "operations_rejected": int(report.workload_summary["operations_rejected"]),
        "tenants_tracked": admission.tenants_tracked if admission else 0,
    }


def bench_sharded(
    duration: float = 300.0, seed: int = 42, shards: int = 4, parallel: bool = True
) -> dict:
    """Aggregate events per wall second through the sharded parallel mode.

    Runs the default scenario partitioned into ``shards`` worker processes
    (each with its own ring slice, workload share and RNG namespace) and
    merges the reports through the exact reducers.  The headline is
    *aggregate* events/sec — total merged events over wall time — which
    scales with ``min(shards, cores)``: on a 4+-core machine 4 shards should
    clear 3x the single-process rate; on fewer cores the parallelism is
    hardware-capped and the recorded ``cpu_count`` says so.
    """
    from repro.simulation.sharding import run_sharded

    config = SimulationConfig(seed=seed, duration=duration)
    report = run_sharded(config, shards, parallel=parallel)
    timing = report.timing
    merged = report.merged
    return {
        "sim_duration": duration,
        "seed": seed,
        "shards": shards,
        "parallel": parallel,
        "wall_seconds": round(timing["wall_seconds"], 4),
        "shard_wall_seconds_max": round(timing["shard_wall_seconds_max"], 4),
        "shard_wall_seconds_sum": round(timing["shard_wall_seconds_sum"], 4),
        "events_processed": int(merged["events_processed"]),
        "aggregate_events_per_sec": round(timing["aggregate_events_per_second"], 1),
        "operations_completed": int(merged["workload"]["operations_completed"]),
    }


# ----------------------------------------------------------------------
# Recording + regression gate
# ----------------------------------------------------------------------
def _check_regression(previous: dict, current: dict) -> list[str]:
    if previous.get("quick") != current.get("quick"):
        # A --quick run is deliberately smaller and noisier; comparing it
        # against a full run (or vice versa) would trip or mask the floor
        # for configuration reasons, not performance ones.
        print(
            "note: previous record used a different --quick setting; "
            "skipping the regression gate for this run",
            file=sys.stderr,
        )
        return []
    if _fingerprint(previous) != _fingerprint(current):
        # Rates from a different machine (or from a record predating the
        # cpu_count field) are not comparable: silently gating against them
        # would flag hardware changes as regressions — or, worse, let a real
        # regression hide behind a faster machine.  Refuse the comparison
        # loudly and let this run re-anchor the trajectory.
        print(
            "note: previous record's machine fingerprint "
            f"{_fingerprint(previous)} differs from this machine's "
            f"{_fingerprint(current)}; cross-machine rate comparisons are "
            "meaningless, so the regression gate is skipped and this run "
            "re-anchors the trajectory",
            file=sys.stderr,
        )
        return []
    problems = []
    pairs = [
        ("kernel events/sec", "kernel", "events_per_sec"),
        ("end-to-end ops/sec", "end_to_end", "ops_per_sec"),
        ("end-to-end events/sec", "end_to_end", "events_per_sec"),
        ("hedged-stack ops/sec", "hedged", "ops_per_sec"),
        ("tenant-stack ops/sec", "tenant", "ops_per_sec"),
        ("sharded aggregate events/sec", "sharded", "aggregate_events_per_sec"),
    ]
    for label, section, key in pairs:
        old = previous.get(section, {}).get(key)
        new = current.get(section, {}).get(key)
        if old and new and new < REGRESSION_FLOOR * old:
            problems.append(
                f"{label} regressed {old:,.0f} -> {new:,.0f} "
                f"({new / old:.0%} of previous, floor {REGRESSION_FLOOR:.0%})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=Path, default=None, help="write results here")
    parser.add_argument(
        "--force", action="store_true", help="record even if rates regressed >20%%"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller run (CI smoke, noisier numbers)"
    )
    parser.add_argument(
        "--skip-end-to-end", action="store_true", help="kernel microbenchmark only"
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="shard count for the sharded section"
    )
    args = parser.parse_args(argv)

    kernel_events = 120_000 if args.quick else 400_000
    e2e_duration = 60.0 if args.quick else 300.0

    result: dict = {
        "schema": "bench_kernel/v2",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": _cpu_count(),
        "recorded_at": _utc_now(),
        "quick": args.quick,
    }

    def _stamp(section: str) -> None:
        result.setdefault("section_started_at", {})[section] = _utc_now()

    _stamp("kernel")
    print(f"kernel microbenchmark ({kernel_events:,} events)...", flush=True)
    result["kernel"] = bench_kernel_events(events=kernel_events)
    print(f"  {result['kernel']['events_per_sec']:,.0f} events/sec", flush=True)

    _stamp("workload")
    print("workload draw primitives (chunked vs scalar)...", flush=True)
    result["workload"] = bench_workload_draws(draws=40_000 if args.quick else 200_000)
    print(
        f"  zipfian {result['workload']['zipfian_scalar_per_sec']:,.0f} scalar, "
        f"{result['workload']['zipfian_chunked_per_sec']:,.0f} chunked draws/sec",
        flush=True,
    )

    if not args.skip_end_to_end:
        _stamp("end_to_end")
        print(f"end-to-end default config ({e2e_duration:.0f} sim-seconds)...", flush=True)
        result["end_to_end"] = bench_end_to_end(duration=e2e_duration)
        print(
            f"  {result['end_to_end']['ops_per_sec']:,.0f} ops/sec, "
            f"{result['end_to_end']['events_per_sec']:,.0f} events/sec",
            flush=True,
        )

        _stamp("hedged")
        print(
            f"end-to-end hedged stack ({e2e_duration:.0f} sim-seconds, "
            "fail-slow interference)...",
            flush=True,
        )
        result["hedged"] = bench_hedged_stack(duration=e2e_duration)
        print(
            f"  {result['hedged']['ops_per_sec']:,.0f} ops/sec, "
            f"{result['hedged']['events_per_sec']:,.0f} events/sec, "
            f"{result['hedged']['hedges_fired']:,} hedges fired",
            flush=True,
        )

        _stamp("tenant")
        print(
            f"end-to-end tenant stack ({e2e_duration:.0f} sim-seconds, "
            "200 tenants + admission control)...",
            flush=True,
        )
        result["tenant"] = bench_tenant_stack(duration=e2e_duration)
        print(
            f"  {result['tenant']['ops_per_sec']:,.0f} ops/sec, "
            f"{result['tenant']['events_per_sec']:,.0f} events/sec",
            flush=True,
        )

        _stamp("sharded")
        shards = args.shards
        print(
            f"sharded parallel mode ({e2e_duration:.0f} sim-seconds, "
            f"{shards} shards, {result['cpu_count']} cores)...",
            flush=True,
        )
        result["sharded"] = bench_sharded(duration=e2e_duration, shards=shards)
        single = (result.get("end_to_end") or {}).get("events_per_sec")
        if single:
            result["sharded"]["speedup_vs_single_process"] = round(
                result["sharded"]["aggregate_events_per_sec"] / single, 2
            )
        print(
            f"  {result['sharded']['aggregate_events_per_sec']:,.0f} aggregate "
            f"events/sec ({result['sharded'].get('speedup_vs_single_process', '?')}x "
            "single-process); scales ~min(shards, cores)",
            flush=True,
        )

    if args.json is not None:
        previous = None
        if args.json.exists():
            try:
                previous = json.loads(args.json.read_text())
            except (OSError, json.JSONDecodeError):
                previous = None
        if previous is not None:
            if args.quick and not previous.get("quick") and not args.force:
                # A quick run replacing a full-run record would dodge the
                # regression gate twice: once now (mismatched configs are
                # not compared) and once on the next full run (which would
                # only see quick numbers).  Keep the full-run trajectory.
                print(
                    f"refusing to overwrite the full-run record in {args.json} "
                    "with --quick numbers (use --force or a different --json path)",
                    file=sys.stderr,
                )
                return 1
            if args.skip_end_to_end:
                # Keep the recorded end-to-end trajectory (and its regression
                # gate) intact across kernel-only iterations.
                for section in ("end_to_end", "hedged", "tenant", "sharded"):
                    if section in previous:
                        result[section] = previous[section]
            problems = _check_regression(previous, result)
            if problems and not args.force:
                for problem in problems:
                    print(f"REGRESSION: {problem}", file=sys.stderr)
                print(
                    f"refusing to record in {args.json} (use --force to override)",
                    file=sys.stderr,
                )
                return 1
            # Carry the oldest recorded baseline forward so the trajectory
            # since this harness was introduced stays visible.
            result["baseline_pre_pr"] = previous.get("baseline_pre_pr", {
                "kernel": previous.get("kernel"),
                "end_to_end": previous.get("end_to_end"),
            })
            base_kernel = (result["baseline_pre_pr"].get("kernel") or {}).get(
                "events_per_sec"
            )
            if base_kernel:
                result["kernel_speedup_vs_baseline"] = round(
                    result["kernel"]["events_per_sec"] / base_kernel, 2
                )
        args.json.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"recorded in {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

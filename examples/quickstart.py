#!/usr/bin/env python3
"""Quickstart: run one SLA-driven scenario end to end.

This example builds the default stack — a 3-node eventually consistent
cluster, a balanced Zipfian workload, the monitoring estimators and the
SLA-driven autonomous controller — runs ten simulated minutes and prints the
headline report: client latency, the ground-truth inconsistency window, SLA
compliance, the actions the controller took and what the run cost.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ClusterConfig,
    ConstantLoad,
    NodeConfig,
    Simulation,
    SimulationConfig,
    WorkloadSpec,
)
from repro.core.controller import ControllerConfig
from repro.workload import BALANCED


def main() -> None:
    config = SimulationConfig(
        seed=42,
        duration=600.0,  # ten simulated minutes
        cluster=ClusterConfig(
            initial_nodes=3,
            replication_factor=3,
            node=NodeConfig(ops_capacity=150.0),
        ),
        workload=WorkloadSpec(
            record_count=5_000,
            operation_mix=BALANCED,
            load_shape=ConstantLoad(140.0),
        ),
        controller=ControllerConfig(policy="sla_driven", evaluation_interval=30.0),
        label="quickstart",
    )

    simulation = Simulation(config)
    report = simulation.run()

    print("=== quickstart: SLA-driven autonomous operation ===")
    print(f"simulated duration : {report.duration:.0f} s")
    print(f"events processed   : {report.events_processed:,}")
    print()
    print("--- client-observed performance ---")
    workload = report.workload_summary
    print(f"operations issued  : {workload['operations_issued']:.0f}")
    print(f"read  p95 latency  : {workload['read_p95_ms']:.1f} ms")
    print(f"write p95 latency  : {workload['write_p95_ms']:.1f} ms")
    print(f"failed operations  : {workload['failure_fraction'] * 100:.2f} %")
    print()
    print("--- consistency ---")
    window = report.ground_truth_window
    print(f"inconsistency window (mean) : {window['mean_window'] * 1000:.1f} ms")
    print(f"inconsistency window (p95)  : {window['p95_window'] * 1000:.1f} ms")
    print(f"stale reads observed        : {report.staleness['stale_reads']:.0f} "
          f"({report.staleness['stale_fraction'] * 100:.2f} % of reads)")
    print()
    print("--- SLA and controller ---")
    print(f"SLA violation fraction : {report.sla_summary['violation_fraction'] * 100:.1f} %")
    print(f"controller rounds      : {report.controller_summary['rounds']:.0f}")
    print(f"actions executed       : {report.controller_summary['actions_executed']:.0f}")
    print(f"final configuration    : {report.final_configuration}")
    print()
    print("--- cost ---")
    print(f"node hours          : {report.cost.node_hours:.2f}")
    print(f"infrastructure cost : {report.cost.infrastructure_cost:.3f}")
    print(f"compensation cost   : {report.cost.compensation_cost:.3f}")
    print(f"total cost          : {report.cost.total_cost:.3f}")


if __name__ == "__main__":
    main()

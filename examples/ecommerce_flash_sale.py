#!/usr/bin/env python3
"""E-commerce flash sale: why the inconsistency window costs money.

The paper motivates its controller with an e-commerce scenario: when the
inconsistency window grows, the chance of a double booking grows with it, and
every double booking has a compensation cost.  This example runs the same
flash-sale load trace (a calm morning followed by a sudden sale spike) twice:

* a **static** deployment that keeps its launch-day configuration, and
* the **SLA-driven** controller, which watches the inconsistency window and
  reconfigures / re-provisions when the spike arrives,

and prints SLA compliance, observed staleness, conflict (double-booking)
events and the resulting cost side by side.

Run with::

    python examples/ecommerce_flash_sale.py
"""

from __future__ import annotations

from repro import ClusterConfig, NodeConfig, Simulation, SimulationConfig, WorkloadSpec
from repro.core.controller import ControllerConfig
from repro.cost import CompensationRates
from repro.experiments.scenarios import standard_sla
from repro.experiments.tables import ResultTable
from repro.workload import BALANCED, FlashCrowdLoad, NoisyLoad

DURATION = 1200.0


def run_policy(policy: str, seed: int = 11):
    """Run the flash-sale trace under one operating policy."""
    load = NoisyLoad(
        FlashCrowdLoad(
            base_rate=40.0,
            spike_rate=170.0,
            spike_start=DURATION * 0.4,
            ramp_duration=60.0,
            hold_duration=240.0,
            decay_duration=240.0,
        ),
        amplitude=0.08,
    )
    config = SimulationConfig(
        seed=seed,
        duration=DURATION,
        cluster=ClusterConfig(
            initial_nodes=3, replication_factor=3, node=NodeConfig(ops_capacity=150.0)
        ),
        workload=WorkloadSpec(record_count=4_000, operation_mix=BALANCED, load_shape=load),
        sla=standard_sla(),
        controller=ControllerConfig(policy=policy, evaluation_interval=20.0),
        # Double bookings are expensive: a stale read older than a second that
        # the application acted on costs a compensation voucher.
        compensation_rates=CompensationRates(
            stale_read=0.005, conflict_event=0.5, conflict_staleness_threshold=1.0
        ),
        label=f"flash-sale-{policy}",
    )
    return Simulation(config).run()


def main() -> None:
    table = ResultTable(
        "E-commerce flash sale: static vs SLA-driven",
        [
            "policy",
            "sla_violation_%",
            "stale_reads",
            "conflict_events",
            "window_p95_ms",
            "read_p95_ms",
            "final_nodes",
            "node_hours",
            "compensation_cost",
            "total_cost",
        ],
    )
    for policy in ("static", "sla_driven"):
        report = run_policy(policy)
        compensation = report.cost.details
        table.add_row(
            {
                "policy": policy,
                "sla_violation_%": report.sla_summary["violation_fraction"] * 100.0,
                "stale_reads": report.staleness["stale_reads"],
                "conflict_events": compensation.get("compensation.conflict_events", 0.0),
                "window_p95_ms": report.ground_truth_window["p95_window"] * 1000.0,
                "read_p95_ms": report.workload_summary["read_p95_ms"],
                "final_nodes": report.final_configuration["node_count"],
                "node_hours": report.cost.node_hours,
                "compensation_cost": report.cost.compensation_cost,
                "total_cost": report.cost.total_cost,
            }
        )
    print(table.render())
    print()
    print(
        "The static deployment rides the spike with its launch configuration: the\n"
        "inconsistency window stretches into the hundreds of milliseconds, latency\n"
        "blows through the SLA and stale reads turn into double bookings.  The\n"
        "SLA-driven controller spends a few extra node-hours to keep the window and\n"
        "the SLA under control during the sale; its own scale-out causes a brief\n"
        "consistency transient (the E4 effect), which is why its compensation line\n"
        "is not zero either."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Diurnal cost optimisation: pay-as-you-use instead of peak provisioning.

Section 3 of the paper argues that statically configuring for the worst case
"causes an overallocation of resources", and that dynamic management saves
money through the cloud's pay-as-you-use billing.  This example serves the
same (time-compressed) day/night load cycle with:

* an **overprovisioned static** cluster sized and configured for the peak, and
* the **SLA-driven** controller starting from a small cluster, growing into
  the peak and shrinking back out of it,

and prints the node-hour and total-cost comparison together with the SLA
compliance both achieved.

Run with::

    python examples/diurnal_cost_optimization.py
"""

from __future__ import annotations

from repro import ClusterConfig, ConsistencyLevel, NodeConfig, Simulation, SimulationConfig, WorkloadSpec
from repro.core.controller import ControllerConfig
from repro.experiments.scenarios import standard_sla
from repro.experiments.tables import ResultTable
from repro.workload import BALANCED, DiurnalLoad, NoisyLoad

DURATION = 1800.0  # one "day", compressed to 30 simulated minutes


def run_variant(label: str, policy: str, initial_nodes: int, read_cl: ConsistencyLevel, seed: int = 21):
    """Run the diurnal trace with one deployment strategy."""
    load = NoisyLoad(
        DiurnalLoad(trough_rate=30.0, peak_rate=110.0, period=DURATION, peak_time=0.5),
        amplitude=0.08,
    )
    config = SimulationConfig(
        seed=seed,
        duration=DURATION,
        cluster=ClusterConfig(
            initial_nodes=initial_nodes,
            replication_factor=3,
            read_consistency=read_cl,
            node=NodeConfig(ops_capacity=150.0),
        ),
        workload=WorkloadSpec(record_count=4_000, operation_mix=BALANCED, load_shape=load),
        sla=standard_sla(),
        controller=ControllerConfig(policy=policy, evaluation_interval=20.0),
        label=label,
    )
    return Simulation(config).run()


def main() -> None:
    table = ResultTable(
        "Diurnal day: overprovisioned static vs SLA-driven",
        [
            "variant",
            "initial_nodes",
            "final_nodes",
            "sla_violation_%",
            "stale_fraction",
            "read_p95_ms",
            "node_hours",
            "infrastructure_cost",
            "total_cost",
        ],
    )
    variants = [
        ("overprovisioned", "overprovisioned_static", 7, ConsistencyLevel.QUORUM),
        ("sla_driven", "sla_driven", 3, ConsistencyLevel.ONE),
    ]
    reports = {}
    for label, policy, nodes, read_cl in variants:
        report = run_variant(label, policy, nodes, read_cl)
        reports[label] = report
        table.add_row(
            {
                "variant": label,
                "initial_nodes": nodes,
                "final_nodes": report.final_configuration["node_count"],
                "sla_violation_%": report.sla_summary["violation_fraction"] * 100.0,
                "stale_fraction": report.staleness["stale_fraction"],
                "read_p95_ms": report.workload_summary["read_p95_ms"],
                "node_hours": report.cost.node_hours,
                "infrastructure_cost": report.cost.infrastructure_cost,
                "total_cost": report.cost.total_cost,
            }
        )
    print(table.render())

    over = reports["overprovisioned"].cost.node_hours
    adaptive = reports["sla_driven"].cost.node_hours
    if over > 0:
        saving = (1.0 - adaptive / over) * 100.0
        print()
        print(f"node-hour saving of the SLA-driven controller: {saving:.0f}% "
              f"({adaptive:.2f} vs {over:.2f} node-hours)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Comparing inconsistency-window monitoring techniques (research question 1).

Runs one loaded scenario with all three estimators active — active
read-after-write probing, passive piggyback measurement on production traffic
and the metric-only RTT model — and prints what each believed about the
system next to the simulator's ground truth, together with the load and
compute overhead each technique incurred.

Run with::

    python examples/monitoring_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, ConstantLoad, NodeConfig, Simulation, SimulationConfig, WorkloadSpec
from repro.core.controller import ControllerConfig
from repro.experiments.tables import ResultTable
from repro.workload import BALANCED


def main() -> None:
    config = SimulationConfig(
        seed=33,
        duration=600.0,
        cluster=ClusterConfig(
            initial_nodes=3, replication_factor=3, node=NodeConfig(ops_capacity=150.0)
        ),
        workload=WorkloadSpec(
            record_count=4_000, operation_mix=BALANCED, load_shape=ConstantLoad(150.0)
        ),
        controller=ControllerConfig(policy="static"),
        label="monitoring-comparison",
    )
    config.monitoring.probe.probe_interval = 2.0

    simulation = Simulation(config)
    report = simulation.run()

    truth_mean = report.ground_truth_window["mean_window"] * 1000.0
    truth_p95 = report.ground_truth_window["p95_window"] * 1000.0
    truth_stale = report.staleness["stale_fraction"]

    table = ResultTable(
        "Inconsistency-window estimators vs ground truth",
        [
            "source",
            "mean_window_ms",
            "p95_window_ms",
            "stale_fraction",
            "extra_operations",
            "probe_load_%",
            "analysis_cpu_s",
        ],
    )
    table.add_row(
        {
            "source": "ground truth",
            "mean_window_ms": truth_mean,
            "p95_window_ms": truth_p95,
            "stale_fraction": truth_stale,
            "extra_operations": 0,
            "probe_load_%": 0.0,
            "analysis_cpu_s": 0.0,
        }
    )
    for name, estimator in simulation.estimators.items():
        estimates = estimator.estimates()
        mean_window = float(np.mean([e.mean_window for e in estimates])) if estimates else 0.0
        p95_window = float(np.mean([e.p95_window for e in estimates])) if estimates else 0.0
        stale = float(np.mean([e.stale_read_fraction for e in estimates])) if estimates else 0.0
        overhead = report.monitoring_overhead[name]
        table.add_row(
            {
                "source": name,
                "mean_window_ms": mean_window * 1000.0,
                "p95_window_ms": p95_window * 1000.0,
                "stale_fraction": stale,
                "extra_operations": overhead["probe_operations"],
                "probe_load_%": overhead["probe_load_fraction"] * 100.0,
                "analysis_cpu_s": overhead["analysis_cpu_seconds"],
            }
        )
    print(table.render())
    print()
    print(
        "Probing bounds the client-observable staleness at a configurable request\n"
        "cost; piggyback measurement is free but only sees what production reads\n"
        "happen to hit; the RTT model costs nothing and misses everything the\n"
        "queueing formula cannot express (dropped mutations, repair backlogs)."
    )


if __name__ == "__main__":
    main()

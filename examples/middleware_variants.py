#!/usr/bin/env python3
"""Request-pipeline variants: same cluster, four request paths.

The request path of the store is a composable middleware pipeline
(:mod:`repro.middleware`).  This example runs the identical cluster and
workload — three replicas under multi-tenant interference, where noisy
neighbours periodically degrade a node — under four declarative pipeline
variants:

* **default** — random load-balanced replica selection, the stack that
  reproduces the classic coordinator bit-identically;
* **latency-aware** — reads routed away from degraded replicas using
  per-node RTT estimates (shared with the model-based RTT estimator), with a
  badness threshold that prevents herding onto the single fastest node;
* **hedged** — the tail-latency stack: latency-aware routing plus
  speculative (hedged) backup reads past a p99-derived latency budget and
  RTT-aware write fan-out ordering/coordinator preference; and
* **per-op overrides** — the workload requests QUORUM for updates while
  reads stay at ONE, honoured by the ``consistency-override`` middleware.

No variant requires touching the coordinator: each is an ordered list
of middleware names on ``SimulationConfig``.

A second section runs a **multi-tenant** workload (a Zipf-skewed tenant
population with gold and bronze SLO tiers) against the same cluster twice —
with and without the ``admission-control`` stage — while one bronze tenant
bursts far past its quota.  With admission control the burst is clipped at
the noisy tenant's token bucket (rejections, not failures) and co-tenants
keep their tail latency; without it everyone pays.

Run with::

    python examples/middleware_variants.py
"""

from __future__ import annotations

from repro import (
    ClusterConfig,
    ConstantLoad,
    ConsistencyLevel,
    NodeConfig,
    Simulation,
    SimulationConfig,
    WorkloadSpec,
)
from repro.core.controller import ControllerConfig
from repro.middleware import (
    ADMISSION_CONTROL_PIPELINE,
    CONSISTENCY_OVERRIDE_PIPELINE,
    HEDGED_PIPELINE,
    LATENCY_AWARE_PIPELINE,
)
from repro.simulation.interference import InterferenceConfig
from repro.workload import BALANCED, READ_HEAVY, FlashCrowdLoad, TenantSpec, TenantTier


def build_config(label, middleware=None, consistency_overrides=None):
    """One 5-minute scenario; only the request pipeline varies."""
    return SimulationConfig(
        seed=42,
        duration=300.0,
        cluster=ClusterConfig(
            initial_nodes=3,
            replication_factor=3,
            node=NodeConfig(ops_capacity=600.0),
        ),
        workload=WorkloadSpec(
            record_count=5_000,
            operation_mix=BALANCED,
            load_shape=ConstantLoad(90.0),
            consistency_overrides=consistency_overrides or {},
        ),
        controller=ControllerConfig(policy="static"),
        # Frequent, long noisy-neighbour episodes: replicas degrade one at a
        # time, which is exactly the condition latency-aware routing targets.
        interference=InterferenceConfig(
            noisy_neighbour_probability=0.3,
            noisy_neighbour_severity=0.25,
            noisy_neighbour_duration=240.0,
            node_sigma=0.08,
        ),
        middleware=middleware,
        label=label,
    )


# Two SLO tiers for the multi-tenant section: a small paying gold tier with
# a generous quota and a large bronze tier on a tight one.
TWO_TIERS = (
    TenantTier(
        name="gold",
        population_fraction=0.10,
        quota_rate=120.0,
        quota_burst=240.0,
        read_p99_slo_ms=30.0,
    ),
    TenantTier(
        name="bronze",
        population_fraction=0.90,
        quota_rate=25.0,
        quota_burst=50.0,
        read_p99_slo_ms=120.0,
    ),
)

_TENANTS = 30
_NOISY_INDEX = _TENANTS - 1  # least popular tenant: bronze by rank


def build_tenant_config(label, middleware=None):
    """A multi-tenant 5-minute scenario with one bursting bronze tenant."""
    burst = FlashCrowdLoad(
        base_rate=0.0,
        spike_rate=400.0,
        spike_start=60.0,
        ramp_duration=10.0,
        hold_duration=150.0,
        decay_duration=30.0,
    )
    return SimulationConfig(
        seed=42,
        duration=300.0,
        cluster=ClusterConfig(
            initial_nodes=3,
            replication_factor=3,
            node=NodeConfig(ops_capacity=150.0),
        ),
        workload=WorkloadSpec(
            operation_mix=READ_HEAVY,
            load_shape=ConstantLoad(170.0),
            tenants=TenantSpec(
                tenants=_TENANTS,
                records_per_tenant=40,
                tiers=TWO_TIERS,
                load_shape_overrides={_NOISY_INDEX: burst},
            ),
        ),
        controller=ControllerConfig(policy="static"),
        interference=InterferenceConfig(enabled=False),
        middleware=middleware,
        label=label,
    )


def run_tenant_section() -> None:
    """The noisy-neighbour comparison: default stack vs admission control."""
    print("\n=== multi-tenant: one bronze tenant bursts 400 ops/s ===\n")
    header = (
        f"{'variant':22s} {'gold p99':>10s} {'bronze p99':>11s} "
        f"{'rejected':>9s} {'fail frac':>9s}"
    )
    print(header)
    print("-" * len(header))
    for name, middleware in (
        ("default (no shield)", None),
        ("admission-control", ADMISSION_CONTROL_PIPELINE),
    ):
        simulation = Simulation(build_tenant_config(name, middleware))
        report = simulation.run()
        tiers = simulation.tenant_rollup.tier_summary()
        workload = report.workload_summary
        print(
            f"{name:22s} "
            f"{tiers.get('gold', {}).get('read_p99_ms', 0.0):7.2f} ms "
            f"{tiers.get('bronze', {}).get('read_p99_ms', 0.0):8.2f} ms "
            f"{workload['operations_rejected']:9,.0f} "
            f"{workload['failure_fraction']:9.4f}"
        )
        admission = simulation.pipeline.get("admission-control")
        if admission is not None:
            noisy_id = simulation.workload.population.profile(_NOISY_INDEX).tenant_id
            noisy = simulation.workload.stats.tenant_stats[noisy_id]
            print(
                f"{'':22s} -> tenant {noisy_id} shed "
                f"{noisy.operations_rejected:,} of its "
                f"{noisy.operations_issued:,} operations "
                f"(rejections by tier: {admission.rejected_by_tier()})"
            )


def main() -> None:
    variants = {
        "default": build_config("default"),
        "latency-aware": build_config("latency-aware", middleware=LATENCY_AWARE_PIPELINE),
        "hedged": build_config("hedged", middleware=HEDGED_PIPELINE),
        "per-op overrides": build_config(
            "per-op-overrides",
            middleware=CONSISTENCY_OVERRIDE_PIPELINE,
            consistency_overrides={
                "read": ConsistencyLevel.ONE,
                "update": ConsistencyLevel.QUORUM,
            },
        ),
    }

    print("=== request-pipeline variants (same cluster, same workload) ===\n")
    header = (
        f"{'variant':18s} {'read p50':>10s} {'read p95':>10s} "
        f"{'write p95':>10s} {'window p95':>11s}"
    )
    print(header)
    print("-" * len(header))
    simulations = {}
    for name, config in variants.items():
        simulation = Simulation(config)
        report = simulation.run()
        simulations[name] = simulation
        workload = report.workload_summary
        print(
            f"{name:18s} "
            f"{workload['read_p50_ms']:8.2f} ms "
            f"{workload['read_p95_ms']:8.2f} ms "
            f"{workload['write_p95_ms']:8.2f} ms "
            f"{report.ground_truth_window['p95_window'] * 1000:8.2f} ms"
        )

    latency_sim = simulations["latency-aware"]
    router = latency_sim.pipeline.get("latency-aware-selection")
    print("\n--- latency-aware routing ---")
    print(f"pipeline           : {', '.join(latency_sim.pipeline.names())}")
    print(
        f"routed reads       : {router.selections:,} "
        f"({router.avoidances:,} steered away from a degraded replica)"
    )
    print("per-node RTT (EWMA), as shared with the rtt estimator:")
    for node_id, rtt in sorted(latency_sim.estimators["rtt"].node_rtt_estimates().items()):
        print(f"  {node_id:10s} : {rtt * 1000:6.3f} ms")

    hedged_sim = simulations["hedged"]
    hedging = hedged_sim.pipeline.get("request-hedging")
    routing = hedged_sim.pipeline.get("rtt-aware-write-routing")
    print("\n--- hedged (tail-latency) stack ---")
    print(f"pipeline           : {', '.join(hedged_sim.pipeline.names())}")
    print(
        f"hedges             : {hedging.hedges_armed:,} armed, "
        f"{hedging.hedges_fired:,} fired, {hedging.hedges_won:,} won "
        f"(budget now {hedging.current_budget() * 1000:.2f} ms)"
    )
    print(
        f"write routing      : {routing.writes_ordered:,} fan-outs ordered, "
        f"{routing.coordinators_preferred:,} coordinator preferences"
    )

    override_sim = simulations["per-op overrides"]
    override = override_sim.pipeline.get("consistency-override")
    print("\n--- per-operation consistency overrides ---")
    print(f"pipeline           : {', '.join(override_sim.pipeline.names())}")
    print(
        f"overrides applied  : {override.overrides_applied:,} "
        "(updates escalated to QUORUM while reads stayed at ONE)"
    )

    run_tenant_section()


if __name__ == "__main__":
    main()

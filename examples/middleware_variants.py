#!/usr/bin/env python3
"""Request-pipeline variants: same cluster, four request paths.

The request path of the store is a composable middleware pipeline
(:mod:`repro.middleware`).  This example runs the identical cluster and
workload — three replicas under multi-tenant interference, where noisy
neighbours periodically degrade a node — under four declarative pipeline
variants:

* **default** — random load-balanced replica selection, the stack that
  reproduces the classic coordinator bit-identically;
* **latency-aware** — reads routed away from degraded replicas using
  per-node RTT estimates (shared with the model-based RTT estimator), with a
  badness threshold that prevents herding onto the single fastest node;
* **hedged** — the tail-latency stack: latency-aware routing plus
  speculative (hedged) backup reads past a p99-derived latency budget and
  RTT-aware write fan-out ordering/coordinator preference; and
* **per-op overrides** — the workload requests QUORUM for updates while
  reads stay at ONE, honoured by the ``consistency-override`` middleware.

No variant requires touching the coordinator: each is an ordered list
of middleware names on ``SimulationConfig``.

Run with::

    python examples/middleware_variants.py
"""

from __future__ import annotations

from repro import (
    ClusterConfig,
    ConstantLoad,
    ConsistencyLevel,
    NodeConfig,
    Simulation,
    SimulationConfig,
    WorkloadSpec,
)
from repro.core.controller import ControllerConfig
from repro.middleware import (
    CONSISTENCY_OVERRIDE_PIPELINE,
    HEDGED_PIPELINE,
    LATENCY_AWARE_PIPELINE,
)
from repro.simulation.interference import InterferenceConfig
from repro.workload import BALANCED


def build_config(label, middleware=None, consistency_overrides=None):
    """One 5-minute scenario; only the request pipeline varies."""
    return SimulationConfig(
        seed=42,
        duration=300.0,
        cluster=ClusterConfig(
            initial_nodes=3,
            replication_factor=3,
            node=NodeConfig(ops_capacity=600.0),
        ),
        workload=WorkloadSpec(
            record_count=5_000,
            operation_mix=BALANCED,
            load_shape=ConstantLoad(90.0),
            consistency_overrides=consistency_overrides or {},
        ),
        controller=ControllerConfig(policy="static"),
        # Frequent, long noisy-neighbour episodes: replicas degrade one at a
        # time, which is exactly the condition latency-aware routing targets.
        interference=InterferenceConfig(
            noisy_neighbour_probability=0.3,
            noisy_neighbour_severity=0.25,
            noisy_neighbour_duration=240.0,
            node_sigma=0.08,
        ),
        middleware=middleware,
        label=label,
    )


def main() -> None:
    variants = {
        "default": build_config("default"),
        "latency-aware": build_config("latency-aware", middleware=LATENCY_AWARE_PIPELINE),
        "hedged": build_config("hedged", middleware=HEDGED_PIPELINE),
        "per-op overrides": build_config(
            "per-op-overrides",
            middleware=CONSISTENCY_OVERRIDE_PIPELINE,
            consistency_overrides={
                "read": ConsistencyLevel.ONE,
                "update": ConsistencyLevel.QUORUM,
            },
        ),
    }

    print("=== request-pipeline variants (same cluster, same workload) ===\n")
    header = (
        f"{'variant':18s} {'read p50':>10s} {'read p95':>10s} "
        f"{'write p95':>10s} {'window p95':>11s}"
    )
    print(header)
    print("-" * len(header))
    simulations = {}
    for name, config in variants.items():
        simulation = Simulation(config)
        report = simulation.run()
        simulations[name] = simulation
        workload = report.workload_summary
        print(
            f"{name:18s} "
            f"{workload['read_p50_ms']:8.2f} ms "
            f"{workload['read_p95_ms']:8.2f} ms "
            f"{workload['write_p95_ms']:8.2f} ms "
            f"{report.ground_truth_window['p95_window'] * 1000:8.2f} ms"
        )

    latency_sim = simulations["latency-aware"]
    router = latency_sim.pipeline.get("latency-aware-selection")
    print("\n--- latency-aware routing ---")
    print(f"pipeline           : {', '.join(latency_sim.pipeline.names())}")
    print(
        f"routed reads       : {router.selections:,} "
        f"({router.avoidances:,} steered away from a degraded replica)"
    )
    print("per-node RTT (EWMA), as shared with the rtt estimator:")
    for node_id, rtt in sorted(latency_sim.estimators["rtt"].node_rtt_estimates().items()):
        print(f"  {node_id:10s} : {rtt * 1000:6.3f} ms")

    hedged_sim = simulations["hedged"]
    hedging = hedged_sim.pipeline.get("request-hedging")
    routing = hedged_sim.pipeline.get("rtt-aware-write-routing")
    print("\n--- hedged (tail-latency) stack ---")
    print(f"pipeline           : {', '.join(hedged_sim.pipeline.names())}")
    print(
        f"hedges             : {hedging.hedges_armed:,} armed, "
        f"{hedging.hedges_fired:,} fired, {hedging.hedges_won:,} won "
        f"(budget now {hedging.current_budget() * 1000:.2f} ms)"
    )
    print(
        f"write routing      : {routing.writes_ordered:,} fan-outs ordered, "
        f"{routing.coordinators_preferred:,} coordinator preferences"
    )

    override_sim = simulations["per-op overrides"]
    override = override_sim.pipeline.get("consistency-override")
    print("\n--- per-operation consistency overrides ---")
    print(f"pipeline           : {', '.join(override_sim.pipeline.names())}")
    print(
        f"overrides applied  : {override.overrides_applied:,} "
        "(updates escalated to QUORUM while reads stayed at ONE)"
    )


if __name__ == "__main__":
    main()
